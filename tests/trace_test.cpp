// Tests for the observability layer (runtime/trace.hpp, runtime/metrics.hpp):
// span nesting and attributes under a fixed virtual clock, deterministic
// golden Chrome-JSON export, the disabled-path-records-nothing regression,
// metrics-counter conservation under fault injection, and the BSP invariant
// that per-phase span sums reconcile with PhaseTimes and the virtual clock.
//
// The tracer and the metrics registry are process-wide singletons, so every
// test (a) configures + clears the tracer on entry and restores the disabled
// default on exit, and (b) asserts metrics as *deltas* around the action
// under test rather than absolute values.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/fault.hpp"
#include "runtime/metrics.hpp"
#include "runtime/simmpi.hpp"
#include "runtime/trace.hpp"

using namespace finch::rt;

namespace {

// Manual clock: tests advance `manual_clock_ns` explicitly so span timestamps
// and durations are exact integers, making string-exact golden export viable.
int64_t manual_clock_ns = 0;

void use_manual_clock() {
  manual_clock_ns = 0;
  Tracer::global().set_clock([] { return manual_clock_ns; });
}

void enable_tracing() {
  TraceConfig cfg;
  cfg.enabled = true;
  Tracer::global().configure(cfg);
  Tracer::global().clear();
}

// Restore the process-wide default (disabled, real clock) so later tests —
// and later *suites* in this binary — start from a clean slate.
void restore_defaults() {
  Tracer::global().configure(TraceConfig{});
  Tracer::global().clear();
  Tracer::global().set_clock(nullptr);
}

// Sum of pid-1 (virtual timeline) span durations per name on `track`, in
// nanoseconds — the test-side half of the reconciliation contract.
std::map<std::string, int64_t> virtual_span_ns(int32_t track) {
  std::map<std::string, int64_t> sums;
  for (const TraceEvent& ev : Tracer::global().snapshot()) {
    if (ev.pid == 1 && ev.track == track) sums[ev.name] += ev.dur_ns;
  }
  return sums;
}

}  // namespace

// ---- disabled path ----------------------------------------------------------

TEST(Trace, DisabledPathRecordsNothing) {
  restore_defaults();
  ASSERT_FALSE(Tracer::global().enabled());
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner");
  }
  SpanAttrs attrs;
  attrs.step = 7;
  Tracer::global().record_complete("virtual", 0, 1000, 5, attrs);
  EXPECT_TRUE(Tracer::global().snapshot().empty());
  EXPECT_EQ(Tracer::global().dropped(), 0);
}

// ---- span nesting + attributes under the virtual clock ----------------------

TEST(Trace, SpanNestingAndAttributes) {
  enable_tracing();
  use_manual_clock();

  {
    SpanAttrs oa;
    oa.rank = 3;
    oa.step = 12;
    TraceSpan outer("outer", oa);  // opens at t=0
    manual_clock_ns = 1000;
    {
      SpanAttrs ia;
      ia.device = 1;
      ia.phase = "compute";
      TraceSpan inner("inner", ia);  // opens at t=1000
      manual_clock_ns = 4000;
    }  // inner closes: [1000, 4000)
    manual_clock_ns = 6000;
  }  // outer closes: [0, 6000)

  std::vector<TraceEvent> events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order: inner is recorded first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.pid, 0);
  EXPECT_EQ(outer.pid, 0);
  EXPECT_EQ(inner.track, outer.track);  // same OS thread, same track

  EXPECT_EQ(outer.ts_ns, 0);
  EXPECT_EQ(outer.dur_ns, 6000);
  EXPECT_EQ(inner.ts_ns, 1000);
  EXPECT_EQ(inner.dur_ns, 3000);
  // Containment: the inner interval nests strictly inside the outer one.
  EXPECT_GE(inner.ts_ns, outer.ts_ns);
  EXPECT_LE(inner.ts_ns + inner.dur_ns, outer.ts_ns + outer.dur_ns);

  EXPECT_EQ(outer.attrs.rank, 3);
  EXPECT_EQ(outer.attrs.step, 12);
  EXPECT_EQ(outer.attrs.device, -1);
  EXPECT_EQ(inner.attrs.device, 1);
  ASSERT_NE(inner.attrs.phase, nullptr);
  EXPECT_STREQ(inner.attrs.phase, "compute");

  restore_defaults();
}

// ---- deterministic golden export --------------------------------------------

// NOTE: this test sets the only track names in this binary, and every test in
// this file runs on the gtest main thread (wall track 0), so the full export
// is knowable down to the byte.
TEST(Trace, GoldenChromeExport) {
  enable_tracing();
  use_manual_clock();
  Tracer::global().set_track_name(1, 7, "virtual");

  manual_clock_ns = 1000;
  {
    TraceSpan span("outer");
    manual_clock_ns = 3000;
  }
  SpanAttrs a1;
  a1.step = 3;
  a1.phase = "compute";
  Tracer::global().record_complete("alpha", 1500, 2500, 7, a1);
  SpanAttrs a2;
  a2.rank = 2;
  a2.device = 1;
  Tracer::global().record_complete("beta", 4000, 1000, 7, a2);

  const std::string golden =
      "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"wall-clock\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"virtual-time\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":7,\"name\":\"thread_name\",\"args\":{\"name\":\"virtual\"}},\n"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":1.000,\"dur\":2.000,\"name\":\"outer\"},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":7,\"ts\":1.500,\"dur\":2.500,\"name\":\"alpha\","
      "\"args\":{\"step\":3,\"phase\":\"compute\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":7,\"ts\":4.000,\"dur\":1.000,\"name\":\"beta\","
      "\"args\":{\"rank\":2,\"device\":1}}\n"
      "]}\n";

  std::ostringstream once, twice;
  Tracer::global().write_chrome_trace(once);
  Tracer::global().write_chrome_trace(twice);
  EXPECT_EQ(once.str(), golden);
  EXPECT_EQ(once.str(), twice.str());  // export is a pure function of state

  // Cheap structural validity check on top of the byte-exact compare.
  const std::string& s = once.str();
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(s.substr(s.size() - 4), "\n]}\n");

  restore_defaults();
}

// ---- folded (flamegraph) export ---------------------------------------------

TEST(Trace, FoldedExportReconstructsNesting) {
  enable_tracing();
  use_manual_clock();

  {
    TraceSpan outer("outer");  // [0, 10000)
    manual_clock_ns = 2000;
    {
      TraceSpan inner("inner");  // [2000, 5000)
      manual_clock_ns = 5000;
    }
    manual_clock_ns = 10000;
  }

  std::ostringstream os;
  Tracer::global().write_folded(os);
  // Self time: outer = 10000 - 3000 (child) = 7000; inner = 3000.
  EXPECT_NE(os.str().find("thread-0;outer 7000\n"), std::string::npos);
  EXPECT_NE(os.str().find("thread-0;outer;inner 3000\n"), std::string::npos);

  restore_defaults();
}

// ---- buffer overflow accounting ---------------------------------------------

TEST(Trace, OverflowCountsDroppedEvents) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.max_events_per_thread = 4;
  Tracer::global().configure(cfg);
  Tracer::global().clear();

  for (int i = 0; i < 10; ++i) Tracer::global().record_complete("e", i, 1, 0);
  EXPECT_EQ(Tracer::global().snapshot().size(), 4u);
  EXPECT_EQ(Tracer::global().dropped(), 6);

  restore_defaults();
}

// ---- metrics registry basics ------------------------------------------------

TEST(Metrics, CounterGaugeHistogramAndReset) {
  MetricsRegistry& mx = MetricsRegistry::global();
  Counter& c = mx.counter("test.counter");
  const double c0 = c.value();
  c.add(2.5);
  c.add();
  EXPECT_DOUBLE_EQ(c.value() - c0, 3.5);
  EXPECT_DOUBLE_EQ(mx.value("test.counter"), c.value());

  mx.gauge("test.gauge").set(42.0);
  EXPECT_DOUBLE_EQ(mx.value("test.gauge"), 42.0);
  EXPECT_DOUBLE_EQ(mx.value("test.not-registered"), 0.0);

  Histogram& h = mx.histogram("test.histogram");
  const int64_t n0 = h.count();
  h.observe(1.0);
  h.observe(4.0);
  EXPECT_EQ(h.count() - n0, 2);
  EXPECT_GE(h.max(), 4.0);

  std::ostringstream os;
  mx.write_json(os);
  EXPECT_NE(os.str().find("\"test.counter\""), std::string::npos);
  EXPECT_NE(os.str().find("\"test.histogram\""), std::string::npos);

  // reset() zeroes values but keeps registrations: the cached references
  // above must stay valid and read zero.
  mx.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(mx.value("test.gauge"), 0.0);
}

// ---- metrics conservation under fault injection -----------------------------

TEST(Metrics, FaultCountersConserveInjectorStats) {
  MetricsRegistry& mx = MetricsRegistry::global();
  const double total0 = mx.value("fault.injected");
  const double launch0 = mx.value("fault.injected.kernel-launch-failure");
  const double drop0 = mx.value("fault.injected.dropped-message");

  FaultInjector inj(/*seed=*/123);
  FaultPolicy every3;
  every3.every = 3;
  inj.set_policy(FaultKind::KernelLaunchFailure, every3);
  FaultPolicy coin;
  coin.probability = 0.5;
  inj.set_policy(FaultKind::DroppedMessage, coin);

  int64_t fired = 0;
  for (int i = 0; i < 60; ++i) {
    fired += inj.should_fault(FaultKind::KernelLaunchFailure, "gpu0.launch") ? 1 : 0;
    fired += inj.should_fault(FaultKind::DroppedMessage, "exchange") ? 1 : 0;
  }
  ASSERT_GT(fired, 0);
  ASSERT_EQ(fired, inj.stats().total_injected());

  // Conservation: the registry's mirror of the injector bookkeeping agrees
  // exactly, in total and per kind.
  EXPECT_DOUBLE_EQ(mx.value("fault.injected") - total0,
                   static_cast<double>(inj.stats().total_injected()));
  EXPECT_DOUBLE_EQ(
      mx.value("fault.injected.kernel-launch-failure") - launch0,
      static_cast<double>(
          inj.stats().injected[static_cast<size_t>(FaultKind::KernelLaunchFailure)]));
  EXPECT_DOUBLE_EQ(mx.value("fault.injected.dropped-message") - drop0,
                   static_cast<double>(
                       inj.stats().injected[static_cast<size_t>(FaultKind::DroppedMessage)]));
}

// ---- BSP reconciliation: spans == phases == clock ---------------------------

TEST(Trace, BspSpanSumsReconcileWithPhasesAndClock) {
  enable_tracing();
  const double compute0 =
      MetricsRegistry::global().value("bsp.phase.compute_seconds");
  const double comm0 =
      MetricsRegistry::global().value("bsp.phase.communication_seconds");

  BspSimulator sim(4);
  sim.set_trace_track(11);  // empty label: no track_name (keeps golden stable)
  std::vector<double> secs = {1.0, 2.0, 0.5, 1.5};
  sim.compute_step(secs);
  sim.uniform_compute(0.25, BspSimulator::Phase::PostProcess);
  Message msg{0, 1, 1 << 20};
  sim.exchange(std::span<const Message>(&msg, 1));
  sim.allreduce(1 << 10);

  // The BSP invariant: every virtual second is phase-attributed. total()
  // re-sums per-phase buckets, so it matches the sequentially-accumulated
  // clock to FP associativity, not bit-exactly.
  EXPECT_NEAR(sim.phases().total(), sim.elapsed(), 1e-12 * sim.elapsed());

  // Span sums per phase equal PhaseTimes to clock-quantization (the tracer
  // stores nanoseconds; fault_stall is a nested overlay, not additive).
  const auto spans = virtual_span_ns(11);
  double span_total_s = 0;
  for (const auto& [name, ns] : spans) {
    if (name != "fault_stall") span_total_s += static_cast<double>(ns) * 1e-9;
  }
  EXPECT_NEAR(static_cast<double>(spans.at("compute")) * 1e-9, sim.phases().compute, 1e-8);
  EXPECT_NEAR(static_cast<double>(spans.at("post_process")) * 1e-9, sim.phases().post_process,
              1e-8);
  EXPECT_NEAR(static_cast<double>(spans.at("communication")) * 1e-9, sim.phases().communication,
              1e-8);
  EXPECT_NEAR(span_total_s, sim.elapsed(), 1e-7);

  // The always-on counters saw the same charges.
  EXPECT_NEAR(MetricsRegistry::global().value("bsp.phase.compute_seconds") - compute0,
              sim.phases().compute, 1e-12);
  EXPECT_NEAR(MetricsRegistry::global().value("bsp.phase.communication_seconds") - comm0,
              sim.phases().communication, 1e-12);

  restore_defaults();
}
