// BTE solver integration tests: physical behaviour of the full DSL-driven
// solver, cross-validation against the hand-written direct solver (the
// paper's "our solutions matched theirs"), and the gray variant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "bte/bte_problem.hpp"
#include "bte/direct_solver.hpp"
#include "bte/gray.hpp"
#include "core/codegen/gpu_solver.hpp"

using namespace finch;
using namespace finch::bte;

namespace {

std::shared_ptr<const BtePhysics> tiny_physics() {
  static auto p = std::make_shared<const BtePhysics>(6, 8);
  return p;
}

BteScenario tiny_scenario() {
  // A 50um device resolved by 5um cells: the Gaussian spot (1/e^2 radius
  // 20um) spans several cells and boundary-driven heating is visible within
  // tens of picoseconds, keeping the tests fast.
  BteScenario s;
  s.nx = s.ny = 10;
  s.lx = s.ly = 50e-6;
  s.hot_w = 20e-6;
  s.ndirs = 8;
  s.nbands = 6;
  s.dt = 1e-12;
  return s;
}

}  // namespace

TEST(BteSolver, EquilibriumIsSteadyWithoutHotSpot) {
  // T_hot == T_cold == T_init: the initial state is a global equilibrium and
  // must remain (nearly) unchanged.
  BteScenario s = tiny_scenario();
  s.T_hot = s.T_cold;
  BteProblem bp(s, tiny_physics());
  auto solver = bp.compile(dsl::Target::CpuSerial);
  solver->run(20);
  for (double T : bp.temperature()) EXPECT_NEAR(T, s.T_init, 0.05);
}

TEST(BteSolver, HotSpotHeatsTheAdjacentRegion) {
  BteScenario s = tiny_scenario();
  s.nsteps = 60;
  BteProblem bp(s, tiny_physics());
  auto solver = bp.compile(dsl::Target::CpuSerial);
  solver->run(60);
  auto T = bp.temperature();
  // Cell nearest the hot-spot center (top middle) is warmer than the initial
  // equilibrium; the bottom corners stay cold.
  const int nx = s.nx;
  const double T_top_mid = T[static_cast<size_t>((s.ny - 1) * nx + nx / 2)];
  const double T_bottom_corner = T[0];
  EXPECT_GT(T_top_mid, s.T_init + 0.2);
  EXPECT_NEAR(T_bottom_corner, s.T_init, 0.2);
  // Temperatures stay within the physically admissible bracket.
  for (double t : T) {
    EXPECT_GE(t, s.T_cold - 0.5);
    EXPECT_LE(t, s.T_hot + 0.5);
  }
}

TEST(BteSolver, HeatSpreadsMonotonicallyFromTheSpot) {
  BteScenario s = tiny_scenario();
  BteProblem bp(s, tiny_physics());
  auto solver = bp.compile(dsl::Target::CpuSerial);
  solver->run(30);
  auto T30 = bp.temperature();
  solver->run(30);
  auto T60 = bp.temperature();
  // The heated region keeps warming early in the transient.
  const int hot_cell = (s.ny - 1) * s.nx + s.nx / 2;
  EXPECT_GT(T60[static_cast<size_t>(hot_cell)], T30[static_cast<size_t>(hot_cell)]);
  // Mid-domain temperature rise lags the near-wall rise (finite phonon speed).
  const int mid_cell = (s.ny / 2) * s.nx + s.nx / 2;
  EXPECT_LT(T60[static_cast<size_t>(mid_cell)] - s.T_init,
            T60[static_cast<size_t>(hot_cell)] - s.T_init);
}

TEST(BteSolver, SymmetricScenarioGivesSymmetricField) {
  BteScenario s = tiny_scenario();
  s.nsteps = 40;
  BteProblem bp(s, tiny_physics());
  bp.compile(dsl::Target::CpuSerial)->run(40);
  auto T = bp.temperature();
  // Hot spot centered: field symmetric about the vertical mid-line.
  for (int j = 0; j < s.ny; ++j)
    for (int i = 0; i < s.nx / 2; ++i) {
      const double a = T[static_cast<size_t>(j * s.nx + i)];
      const double b = T[static_cast<size_t>(j * s.nx + (s.nx - 1 - i))];
      EXPECT_NEAR(a, b, 1e-8 * std::abs(a)) << "i=" << i << " j=" << j;
    }
}

TEST(BteSolver, DirectSolverMatchesDslSolver) {
  // The hand-written baseline and the DSL-generated solver implement the same
  // discretization; fields must agree to tight tolerance after many steps.
  BteScenario s = tiny_scenario();
  auto phys = tiny_physics();
  BteProblem bp(s, phys);
  auto solver = bp.compile(dsl::Target::CpuSerial);
  DirectSolver direct(s, phys);
  const int steps = 25;
  solver->run(steps);
  direct.run(steps);

  const auto& I_dsl = bp.problem().fields().get("I");
  const auto& I_dir = direct.intensity();
  double max_rel = 0;
  for (int32_t c = 0; c < I_dsl.num_cells(); ++c)
    for (int32_t k = 0; k < I_dsl.dof_per_cell(); ++k) {
      const double a = I_dsl.at(c, k);
      const double b = I_dir[static_cast<size_t>(c) * I_dsl.dof_per_cell() + k];
      max_rel = std::max(max_rel, std::abs(a - b) / (std::abs(a) + 1e-300));
    }
  EXPECT_LT(max_rel, 1e-10);

  auto T_dsl = bp.temperature();
  const auto& T_dir = direct.temperature();
  for (size_t i = 0; i < T_dsl.size(); ++i) EXPECT_NEAR(T_dsl[i], T_dir[i], 1e-7);
}

TEST(BteSolver, GpuTargetMatchesCpuForBte) {
  BteScenario s = tiny_scenario();
  s.nx = s.ny = 8;
  auto phys = tiny_physics();
  BteProblem cpu(s, phys);
  cpu.compile(dsl::Target::CpuSerial)->run(10);

  rt::SimGpu gpu(rt::GpuSpec::a6000());
  BteProblem gpup(s, phys);
  gpup.problem().use_cuda(&gpu);
  gpup.compile()->run(10);

  auto a = cpu.problem().fields().get("I").data();
  auto b = gpup.problem().fields().get("I").data();
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  EXPECT_GT(gpu.counters().kernel_launches, 0);
}

TEST(BteSolver, MovementPlanSendsOnlyAnnotatedArrays) {
  BteScenario s = tiny_scenario();
  BteProblem bp(s, tiny_physics());
  auto plan = codegen::gpu_movement_plan(bp.problem());
  // Per step: I comes back (GPU writes, CPU post-step reads); Io and beta go
  // up (CPU writes, GPU reads). Sx/Sy/vg/T never move per step.
  auto has = [](const std::vector<codegen::MovementPlan::Transfer>& ts, const std::string& n) {
    return std::any_of(ts.begin(), ts.end(), [&](const auto& t) { return t.array == n; });
  };
  EXPECT_TRUE(has(plan.per_step_d2h, "I"));
  EXPECT_TRUE(has(plan.per_step_h2d, "Io"));
  EXPECT_TRUE(has(plan.per_step_h2d, "beta"));
  EXPECT_FALSE(has(plan.per_step_h2d, "I"));
  EXPECT_FALSE(has(plan.per_step_d2h, "Io"));
  EXPECT_FALSE(has(plan.per_step_h2d, "T"));
  // The optimized plan moves far less than the naive one.
  auto naive = codegen::gpu_movement_plan(bp.problem(), /*naive=*/true);
  EXPECT_LT(plan.step_total_bytes(), naive.step_total_bytes());
}

TEST(BteSolver, PaperDofCountsAtFullScale) {
  // §III.A: 20 x 55 = 1100 intensity DOF per cell, ~1.6e7 overall on 120x120.
  BteScenario s = BteScenario::paper_hotspot();
  BtePhysics phys(s.nbands, s.ndirs);
  EXPECT_EQ(phys.num_bands(), 55);
  EXPECT_EQ(phys.num_dirs(), 20);
  const int64_t dofs = static_cast<int64_t>(s.nx) * s.ny * phys.num_bands() * phys.num_dirs();
  EXPECT_EQ(dofs, 15840000);  // 1.584e7 ~ "about 1.6e7"
}

TEST(BteGray, RelaxesTowardHotWallProfile) {
  GrayScenario s;
  s.nx = s.ny = 12;
  s.lx = s.ly = 50e-6;
  s.hot_w = 20e-6;
  s.ndirs = 8;
  s.nsteps = 80;
  GrayBteProblem gp(s);
  gp.compile(dsl::Target::CpuSerial)->run(80);
  auto T = gp.temperature();
  const double T_top = T[static_cast<size_t>((s.ny - 1) * s.nx + s.nx / 2)];
  const double T_bot = T[static_cast<size_t>(s.nx / 2)];
  EXPECT_GT(T_top, s.T_init + 0.5);
  EXPECT_LT(T_bot, T_top);
  for (double t : T) {
    EXPECT_GE(t, s.T_cold - 1.0);
    EXPECT_LE(t, s.T_hot + 1.0);
  }
}

TEST(BteGray, EquilibriumFixedPoint) {
  GrayScenario s;
  s.nx = s.ny = 8;
  s.ndirs = 8;
  s.T_hot = s.T_cold;
  GrayBteProblem gp(s);
  gp.compile(dsl::Target::CpuSerial)->run(30);
  for (double t : gp.temperature()) EXPECT_NEAR(t, s.T_init, 1e-9);
}

TEST(BteCorner, CornerScenarioHeatsTheCorner) {
  BteScenario s = BteScenario::corner();
  s.nx = 18;
  s.ny = 6;
  s.lx = 60e-6;
  s.ly = 20e-6;
  s.hot_w = 15e-6;
  s.ndirs = 8;
  s.nbands = 6;
  BteProblem bp(s, tiny_physics());
  bp.compile(dsl::Target::CpuSerial)->run(60);
  auto T = bp.temperature();
  // Source sits at the x=0 end of the hot (top) wall.
  const double T_near = T[static_cast<size_t>((s.ny - 1) * s.nx + 0)];
  const double T_far = T[static_cast<size_t>((s.ny - 1) * s.nx + s.nx - 1)];
  EXPECT_GT(T_near, T_far + 0.2);
  EXPECT_GT(T_near, s.T_init);
}
