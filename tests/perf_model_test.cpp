// Performance-model tests: the qualitative scaling claims of the paper must
// emerge from the models (these are the same claims EXPERIMENTS.md records).
#include <gtest/gtest.h>

#include "perf/models.hpp"

using namespace finch::perf;

namespace {

struct Ctx {
  Workload w = Workload::paper();
  CalibratedCosts c = CalibratedCosts::defaults();
  ModelConfig m;
};

}  // namespace

TEST(PerfModel, WorkloadPaperMatchesSectionIIIA) {
  Workload w = Workload::paper();
  EXPECT_EQ(w.cells, 14400);
  EXPECT_EQ(w.bands, 55);
  EXPECT_EQ(w.dirs, 20);
  EXPECT_EQ(w.dofs(), 15840000);
}

TEST(PerfModel, WorkloadFromScenarioResolvesBands) {
  finch::bte::BteScenario s = finch::bte::BteScenario::paper_hotspot();
  Workload w = Workload::from_scenario(s);
  EXPECT_EQ(w.bands, 55);  // 40 spectral -> 55 resolved
  EXPECT_EQ(w.cells, 14400);
}

TEST(PerfModel, BandParallelSpeedsUpThenSaturates) {
  Ctx s;
  const double t1 = model_band_parallel(s.w, s.c, s.m, 1).total;
  const double t10 = model_band_parallel(s.w, s.c, s.m, 10).total;
  const double t55 = model_band_parallel(s.w, s.c, s.m, 55).total;
  const double t110 = model_band_parallel(s.w, s.c, s.m, 110).total;
  EXPECT_GT(t1 / t10, 5.0);        // near-linear early
  EXPECT_GT(t10 / t55, 1.5);       // still improving to 55
  // Beyond one band per rank there is nothing left to split.
  EXPECT_GT(t110, 0.85 * t55);
}

TEST(PerfModel, CellParallelScalesTo320) {
  Ctx s;
  const double t1 = model_cell_parallel(s.w, s.c, s.m, 1).total;
  const double t320 = model_cell_parallel(s.w, s.c, s.m, 320).total;
  EXPECT_GT(t1 / t320, 80.0);  // strong scaling well past the band limit
}

TEST(PerfModel, CellParallelEventuallyBeatsBandParallel) {
  // Fig. 4: "the cell-based parallel version is able to scale to a greater
  // number of processes despite a slightly higher communication cost".
  Ctx s;
  const double band20 = model_band_parallel(s.w, s.c, s.m, 20).total;
  const double cell20 = model_cell_parallel(s.w, s.c, s.m, 20).total;
  // At modest counts they are comparable (within 2x).
  EXPECT_LT(std::abs(std::log(band20 / cell20)), std::log(2.0));
  // At large counts cells win decisively.
  EXPECT_LT(model_cell_parallel(s.w, s.c, s.m, 320).total,
            0.5 * model_band_parallel(s.w, s.c, s.m, 320).total);
}

TEST(PerfModel, CellParallelHasHigherCommunication) {
  Ctx s;
  auto band = model_band_parallel(s.w, s.c, s.m, 40);
  auto cell = model_cell_parallel(s.w, s.c, s.m, 40);
  EXPECT_GT(cell.communication, band.communication);
}

TEST(PerfModel, IntensityDominatesBandParallelBreakdown) {
  // Fig. 5: intensity ~97% at small counts, shrinking but still dominant at 55.
  Ctx s;
  auto p1 = model_band_parallel(s.w, s.c, s.m, 1);
  EXPECT_GT(p1.intensity / p1.total, 0.90);
  auto p55 = model_band_parallel(s.w, s.c, s.m, 55);
  EXPECT_GT(p55.intensity / p55.total, 0.5);
  EXPECT_LT(p55.intensity / p55.total, 0.95);  // other phases grew visible
}

TEST(PerfModel, FortranFasterSeriallyButScalesWorse) {
  // Fig. 9: "sequential execution of our code takes roughly twice as long as
  // the Fortran code" but the Fortran code scales poorly.
  Ctx s;
  const double finch1 = model_band_parallel(s.w, s.c, s.m, 1).total;
  const double fort1 = model_fortran(s.w, s.c, s.m, 1).total;
  EXPECT_NEAR(finch1 / fort1, 2.0, 0.35);
  const double finch40 = model_band_parallel(s.w, s.c, s.m, 40).total;
  const double fort40 = model_fortran(s.w, s.c, s.m, 40).total;
  EXPECT_LT(finch40, fort40);  // the DSL code overtakes at scale
}

TEST(PerfModel, GpuRoughly18xOverCpuAtEqualPartitions) {
  // §III.D / Fig. 7: "the GPU version is about 18 times faster" than the CPU
  // code with an equal number of partitions.
  Ctx s;
  for (int p : {1, 2, 5, 10}) {
    const double cpu = model_band_parallel(s.w, s.c, s.m, p).total;
    const double gpu = model_gpu(s.w, s.c, s.m, p).total;
    EXPECT_GT(cpu / gpu, 8.0) << p;
    EXPECT_LT(cpu / gpu, 40.0) << p;
  }
}

TEST(PerfModel, GpuScalingFlattensPastTen) {
  // Fig. 7: "Strong scaling ... good up to at least 10 devices, but larger
  // numbers did not show further speedup."
  Ctx s;
  const double g1 = model_gpu(s.w, s.c, s.m, 1).total;
  const double g10 = model_gpu(s.w, s.c, s.m, 10).total;
  const double g40 = model_gpu(s.w, s.c, s.m, 40).total;
  EXPECT_GT(g1 / g10, 3.0);          // useful scaling to 10
  EXPECT_LT(g10 / g40, 2.5);         // diminishing returns beyond
}

TEST(PerfModel, TemperatureUpdateDominatesGpuBreakdown) {
  // Fig. 8 vs Fig. 5: the CPU-side temperature update is a far larger share
  // of the accelerated version.
  Ctx s;
  auto cpu = model_band_parallel(s.w, s.c, s.m, 4);
  auto gpu = model_gpu(s.w, s.c, s.m, 4);
  EXPECT_GT(gpu.temperature / gpu.total, 2.0 * (cpu.temperature / cpu.total));
  EXPECT_GT(gpu.temperature / gpu.total, 0.3);
}

TEST(PerfModel, GpuCommunicationVisibleButNotDominant) {
  // §III.D: "communication time between the GPU and host does not make up a
  // very significant portion of the time".
  Ctx s;
  auto gpu = model_gpu(s.w, s.c, s.m, 1);
  EXPECT_GT(gpu.communication, 0.0);
  EXPECT_LT(gpu.communication / gpu.total, 0.35);
}

TEST(PerfModel, GpuProfileMatchesPaperTableShape) {
  // §III.D table: SM utilization 86%, memory throughput 11%, FLOP 49% of
  // (double-precision) peak. The model should land in the same regime:
  // high occupancy, compute-bound, memory far from saturated.
  Ctx s;
  GpuProfile prof = model_gpu_profile(s.w, s.m);
  EXPECT_GT(prof.sm_utilization, 0.7);
  EXPECT_LE(prof.sm_utilization, 1.0);
  EXPECT_GT(prof.flop_fraction, 0.3);
  EXPECT_LT(prof.flop_fraction, 0.75);
  EXPECT_LT(prof.mem_fraction, 0.3);
  EXPECT_GT(prof.flop_fraction, prof.mem_fraction);  // compute bound
}

TEST(PerfModel, CalibrationProducesSaneCosts) {
  CalibratedCosts c = CalibratedCosts::measure();
  EXPECT_GT(c.sec_per_dof_intensity, 1e-10);
  EXPECT_LT(c.sec_per_dof_intensity, 1e-5);
  EXPECT_GT(c.sec_per_cell_temperature, 1e-8);
  EXPECT_LT(c.sec_per_cell_temperature, 1e-2);
}

TEST(PerfModel, InvalidArguments) {
  Ctx s;
  EXPECT_THROW(model_band_parallel(s.w, s.c, s.m, 0), std::invalid_argument);
  EXPECT_THROW(model_cell_parallel(s.w, s.c, s.m, 0), std::invalid_argument);
  EXPECT_THROW(model_gpu(s.w, s.c, s.m, 0), std::invalid_argument);
}
