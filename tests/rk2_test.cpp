// RK2 (midpoint) time-stepping tests: exactness on the linear decay model,
// second-order convergence vs forward Euler's first order, and behaviour on
// the advective system.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dsl/problem.hpp"
#include "mesh/mesh.hpp"

using namespace finch;
using dsl::Problem;
using dsl::Target;
using dsl::TimeScheme;

namespace {

// Solves du/dt = -k u for time T with n steps under the given scheme and
// returns the value at one cell (all cells identical).
double decay_value(TimeScheme scheme, double k, double T, int n) {
  Problem p("decay");
  p.set_mesh(mesh::Mesh::structured_quad(2, 2, 1.0, 1.0));
  p.time_stepper(scheme);
  p.set_steps(T / n, 1);
  p.variable("u");
  p.coefficient("k", k);
  p.conservation_form("u", "-k*u");
  p.initial("u", [](int32_t, std::span<const int32_t>) { return 1.0; });
  auto solver = p.compile(Target::CpuSerial);
  solver->run(n);
  return p.fields().get("u").at(0, 0);
}

}  // namespace

TEST(Rk2, MatchesMidpointUpdateExactly) {
  // One RK2 step of du/dt = -k u gives u1 = u0 (1 - k dt + (k dt)^2 / 2).
  const double k = 3.0, dt = 0.01;
  const double got = decay_value(TimeScheme::RK2Midpoint, k, dt, 1);
  const double kd = k * dt;
  EXPECT_NEAR(got, 1.0 - kd + 0.5 * kd * kd, 1e-15);
}

TEST(Rk2, SecondOrderConvergence) {
  const double k = 2.0, T = 0.5;
  const double exact = std::exp(-k * T);
  const double e_rk_10 = std::abs(decay_value(TimeScheme::RK2Midpoint, k, T, 10) - exact);
  const double e_rk_20 = std::abs(decay_value(TimeScheme::RK2Midpoint, k, T, 20) - exact);
  const double e_eu_10 = std::abs(decay_value(TimeScheme::ForwardEuler, k, T, 10) - exact);
  const double e_eu_20 = std::abs(decay_value(TimeScheme::ForwardEuler, k, T, 20) - exact);
  // Orders: Euler halves the error, RK2 quarters it.
  EXPECT_NEAR(e_eu_10 / e_eu_20, 2.0, 0.3);
  EXPECT_NEAR(e_rk_10 / e_rk_20, 4.0, 0.6);
  // And RK2 is far more accurate at equal step count.
  EXPECT_LT(e_rk_10, e_eu_10 / 5.0);
}

TEST(Rk2, ConservesMassWithZeroFluxWalls) {
  Problem p("rk2-conserve");
  p.set_mesh(mesh::Mesh::structured_quad(8, 8, 1.0, 1.0));
  p.time_stepper(TimeScheme::RK2Midpoint);
  p.set_steps(0.002, 1);
  p.variable("u");
  p.coefficient("bx", 0.6);
  p.coefficient("by", -0.4);
  p.conservation_form("u", "-surface(upwind([bx; by], u))");
  p.initial("u", [](int32_t c, std::span<const int32_t>) { return c % 3 == 0 ? 2.0 : 0.25; });
  auto solver = p.compile(Target::CpuSerial);
  double before = 0;
  const auto& u0 = p.fields().get("u");
  for (int32_t c = 0; c < u0.num_cells(); ++c) before += u0.at(c, 0);
  solver->run(40);
  double after = 0;
  for (int32_t c = 0; c < u0.num_cells(); ++c) after += u0.at(c, 0);
  EXPECT_NEAR(after, before, 1e-10 * std::abs(before));
}

TEST(Rk2, UniformAdvectionFixedPointWithValueBc) {
  Problem p("rk2-const");
  p.set_mesh(mesh::Mesh::structured_quad(5, 5, 1.0, 1.0));
  p.time_stepper(TimeScheme::RK2Midpoint);
  p.set_steps(0.001, 1);
  p.variable("u");
  p.coefficient("bx", 1.0);
  p.coefficient("by", 0.0);
  p.conservation_form("u", "-surface(upwind([bx; by], u))");
  p.initial("u", [](int32_t, std::span<const int32_t>) { return 4.0; });
  for (int region = 1; region <= 4; ++region)
    p.boundary("u", region, dsl::BcType::Value, "const4",
               [](const fvm::BoundaryContext&) { return 4.0; });
  auto solver = p.compile(Target::CpuSerial);
  solver->run(25);
  for (int32_t c = 0; c < 25; ++c) EXPECT_NEAR(p.fields().get("u").at(c, 0), 4.0, 1e-12);
}

TEST(Rk2, GpuTargetStillRejectsNonEuler) {
  // The hybrid GPU target lowers ForwardEuler only for now; requesting RK2
  // must fail loudly rather than silently integrate wrong.
  Problem p("rk2-gpu");
  p.set_mesh(mesh::Mesh::structured_quad(2, 2, 1.0, 1.0));
  p.time_stepper(TimeScheme::RK2Midpoint);
  p.variable("u");
  p.coefficient("k", 1.0);
  p.conservation_form("u", "-k*u");
  p.initial("u", [](int32_t, std::span<const int32_t>) { return 1.0; });
  rt::SimGpu gpu(rt::GpuSpec::a6000());
  p.use_cuda(&gpu);
  EXPECT_THROW(p.compile(dsl::Target::Gpu), std::invalid_argument);
}
