// Spectral 3-D BTE (the paper's "very coarse-grained 3-D runs" with the full
// band structure): equilibrium steadiness, hot-spot response, symmetry, and
// the §III.A scaling observation that 3-D blows the problem up by two
// dimensions (cells x directions).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bte/bte_problem.hpp"

using namespace finch;
using namespace finch::bte;

namespace {

std::shared_ptr<const BtePhysics> phys3d() {
  static auto p = std::make_shared<const BtePhysics>(4, 2, 4);  // 4 bands, 8 ordinates
  return p;
}

Bte3dScenario tiny3d() {
  Bte3dScenario s;
  s.nx = s.ny = s.nz = 6;
  s.lx = s.ly = s.lz = 30e-6;
  s.hot_w = 12e-6;
  s.n_polar = 2;
  s.n_azimuth = 4;
  s.nbands = 4;
  s.dt = 1e-12;
  return s;
}

}  // namespace

TEST(Bte3d, PhysicsDimensions) {
  EXPECT_EQ(phys3d()->num_dirs(), 8);
  EXPECT_GE(phys3d()->num_bands(), 4);  // 4 LA + TA overlap
  // The paper's full 3-D discretization: 400 directions x 55 bands = 22000
  // coupled PDEs ("This typical discretization results in 22000 coupled PDEs").
  BtePhysics full(40, 20, 20);
  EXPECT_EQ(full.num_dirs() * full.num_bands(), 22000);
}

TEST(Bte3d, EquilibriumIsSteady) {
  Bte3dScenario s = tiny3d();
  s.T_hot = s.T_cold;
  BteProblem3d bp(s, phys3d());
  bp.compile(dsl::Target::CpuSerial)->run(10);
  for (double T : bp.temperature()) EXPECT_NEAR(T, s.T_init, 0.05);
}

TEST(Bte3d, HotSpotHeatsTheTopCenter) {
  Bte3dScenario s = tiny3d();
  BteProblem3d bp(s, phys3d());
  bp.compile(dsl::Target::CpuSerial)->run(60);
  auto T = bp.temperature();
  const int n = s.nx;
  auto at = [&](int i, int j, int k) { return T[static_cast<size_t>((k * n + j) * n + i)]; };
  // Top-center warms, bottom corner stays cold; field bounded.
  EXPECT_GT(at(n / 2, n / 2, n - 1), s.T_init + 0.1);
  EXPECT_NEAR(at(0, 0, 0), s.T_init, 0.2);
  for (double t : T) {
    EXPECT_GE(t, s.T_cold - 0.5);
    EXPECT_LE(t, s.T_hot + 0.5);
  }
  // Decays downward under the spot.
  EXPECT_GT(at(n / 2, n / 2, n - 1), at(n / 2, n / 2, n / 2));
}

TEST(Bte3d, FourFoldSymmetryOfTheField) {
  Bte3dScenario s = tiny3d();
  BteProblem3d bp(s, phys3d());
  bp.compile(dsl::Target::CpuSerial)->run(30);
  auto T = bp.temperature();
  const int n = s.nx;
  auto at = [&](int i, int j, int k) { return T[static_cast<size_t>((k * n + j) * n + i)]; };
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n / 2; ++i) {
        EXPECT_NEAR(at(i, j, k), at(n - 1 - i, j, k), 1e-8) << i << " " << j << " " << k;
        EXPECT_NEAR(at(j, i, k), at(j, n - 1 - i, k), 1e-8);
      }
}

TEST(Bte3d, GpuTargetMatchesCpu) {
  Bte3dScenario s = tiny3d();
  s.nx = s.ny = s.nz = 4;
  BteProblem3d cpu(s, phys3d());
  cpu.compile(dsl::Target::CpuSerial)->run(6);
  rt::SimGpu gpu(rt::GpuSpec::a6000());
  BteProblem3d gp(s, phys3d());
  gp.problem().use_cuda(&gpu);
  gp.compile()->run(6);
  auto a = cpu.problem().fields().get("I").data();
  auto b = gp.problem().fields().get("I").data();
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}
