// Distributed-execution tests: the cell-partitioned and band-partitioned
// solvers (real per-rank storage, real halo exchange / band gather) must be
// bit-identical to the serial hand-written solver for any partition count —
// the executable counterpart of Fig. 3's two communication patterns.
#include <gtest/gtest.h>

#include <memory>

#include "bte/direct_solver.hpp"
#include "bte/partitioned_solver.hpp"

using namespace finch;
using namespace finch::bte;

namespace {

std::shared_ptr<const BtePhysics> phys() {
  static auto p = std::make_shared<const BtePhysics>(6, 8);
  return p;
}

BteScenario scen() {
  BteScenario s;
  s.nx = 12;
  s.ny = 10;
  s.lx = s.ly = 50e-6;
  s.hot_w = 20e-6;
  s.ndirs = 8;
  s.nbands = 6;
  s.dt = 1e-12;
  return s;
}

}  // namespace

class CellParts : public ::testing::TestWithParam<int> {};

TEST_P(CellParts, BitIdenticalToSerial) {
  const int nparts = GetParam();
  BteScenario s = scen();
  DirectSolver serial(s, phys());
  CellPartitionedSolver dist(s, phys(), nparts);
  const int steps = 15;
  serial.run(steps);
  dist.run(steps);

  const auto& a = serial.intensity();
  const auto b = dist.gather_intensity();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "dof " << i;

  const auto& Ta = serial.temperature();
  const auto Tb = dist.gather_temperature();
  for (size_t i = 0; i < Ta.size(); ++i) ASSERT_EQ(Ta[i], Tb[i]) << "cell " << i;
}

INSTANTIATE_TEST_SUITE_P(PartCounts, CellParts, ::testing::Values(1, 2, 3, 4, 6));

class BandParts : public ::testing::TestWithParam<int> {};

TEST_P(BandParts, BitIdenticalToSerial) {
  const int nparts = GetParam();
  BteScenario s = scen();
  DirectSolver serial(s, phys());
  BandPartitionedSolver dist(s, phys(), nparts);
  const int steps = 15;
  serial.run(steps);
  dist.run(steps);

  const auto& a = serial.intensity();
  const auto b = dist.gather_intensity();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "dof " << i;
  for (size_t i = 0; i < serial.temperature().size(); ++i)
    ASSERT_EQ(serial.temperature()[i], dist.temperature()[i]) << "cell " << i;
}

INSTANTIATE_TEST_SUITE_P(PartCounts, BandParts, ::testing::Values(1, 2, 4, 8));

TEST(PartitionedComm, CellCommVolumeMatchesHalo) {
  BteScenario s = scen();
  CellPartitionedSolver dist(s, phys(), 4);
  // Per step every rank receives its full halo: bytes = sum over ranks of
  // ghosts * dofs * 8. Run a few steps and check the accounting.
  const int steps = 5;
  dist.run(steps);
  EXPECT_GT(dist.comm().bytes_per_step, 0);
  EXPECT_EQ(dist.comm().total_bytes, dist.comm().bytes_per_step * steps);
  EXPECT_GE(dist.comm().messages_per_step, 4);  // each rank has >= 1 neighbor
}

TEST(PartitionedComm, BandCommIsIndependentOfPartCount) {
  // "When partitioning among the bands the boundary communication can be
  // avoided": only the temperature-update gather moves data, whose volume is
  // a function of cells x bands, not of the partition count.
  BteScenario s = scen();
  BandPartitionedSolver d2(s, phys(), 2), d4(s, phys(), 4);
  EXPECT_EQ(d2.comm().bytes_per_step, d4.comm().bytes_per_step);
}

TEST(PartitionedComm, CellCommGrowsWithParts_BandStaysFlat) {
  // Fig. 3: cell partitioning needs neighbor exchange that grows with the
  // number of interfaces; equation partitioning does not.
  BteScenario s = scen();
  CellPartitionedSolver c2(s, phys(), 2), c6(s, phys(), 6);
  EXPECT_GT(c6.comm().bytes_per_step, c2.comm().bytes_per_step);
  BandPartitionedSolver b2(s, phys(), 2), b6(s, phys(), 6);
  EXPECT_EQ(b2.comm().bytes_per_step, b6.comm().bytes_per_step);
}

TEST(PartitionedErrors, RejectsBadPartCounts) {
  BteScenario s = scen();
  EXPECT_THROW(CellPartitionedSolver(s, phys(), 0), std::invalid_argument);
  EXPECT_THROW(BandPartitionedSolver(s, phys(), 0), std::invalid_argument);
  EXPECT_THROW(BandPartitionedSolver(s, phys(), 1000), std::invalid_argument);
}

TEST(PartitionedComm, GreedyGraphMethodAlsoExact) {
  BteScenario s = scen();
  DirectSolver serial(s, phys());
  CellPartitionedSolver dist(s, phys(), 3, mesh::PartitionMethod::GreedyGraph);
  serial.run(8);
  dist.run(8);
  const auto& a = serial.intensity();
  const auto b = dist.gather_intensity();
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}
