// Differential and failure-path tests for the native JIT backend
// (CODEGEN.md): for a matrix of problems — BTE, gray model, RK2, DofMajor,
// threaded, plus seeded fuzz-generated conservation forms — the native
// solver's results must be bit-identical to the bytecode VM's. Negative
// paths (no compiler, compile error, corrupted cache entry, disabled JIT)
// must fall back to the VM cleanly, counted in jit.fallback, and still
// produce the VM's exact answer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>

#include "bte/bte_problem.hpp"
#include "bte/gray.hpp"
#include "core/codegen/native_backend.hpp"
#include "core/codegen/native_ir.hpp"
#include "core/dsl/problem.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"

using namespace finch;
namespace fs = std::filesystem;

namespace {

double counter(const char* name) { return rt::MetricsRegistry::global().counter(name).value(); }

bool bits_equal(const fvm::CellField& a, const fvm::CellField& b) {
  if (a.data().size() != b.data().size()) return false;
  return std::memcmp(a.data().data(), b.data().data(), a.data().size() * sizeof(double)) == 0;
}

// Small toy problem over a 6x5 quad mesh: I[d,b] with direction/band indices,
// a flux BC on the y-min wall, optionally a value BC on y-max, and the x walls
// left as default zero-flux.
std::unique_ptr<dsl::Problem> toy_problem(const std::string& eq, dsl::Backend backend,
                                          fvm::Layout layout = fvm::Layout::CellMajor,
                                          sym::TimeScheme scheme = sym::TimeScheme::ForwardEuler,
                                          bool value_bc = false) {
  auto p = std::make_unique<dsl::Problem>("toy");
  p->domain(2).time_stepper(scheme);
  p->set_steps(0.01, 4);
  p->set_mesh(mesh::Mesh::structured_quad(6, 5, 1.0, 1.0));
  p->layout(layout);
  p->execution_backend(backend);
  p->index("d", 1, 3);
  p->index("b", 1, 2);
  p->variable("I", {"d", "b"});
  p->variable("Io", {"b"});
  p->coefficient("Sx", {0.6, -0.8, 0.2}, {"d"});
  p->coefficient("Sy", {0.4, 0.3, -0.9}, {"d"});
  p->coefficient("k", 0.7);
  p->coefficient("vg", 1.3);
  p->initial("I", [](int32_t c, std::span<const int32_t> idx) {
    return 0.05 * (c + 1) + 0.3 * idx[0] - 0.17 * idx[1];
  });
  p->initial("Io", [](int32_t c, std::span<const int32_t> idx) {
    return 0.4 + 0.01 * c + 0.2 * idx[0];
  });
  p->boundary("I", 1, dsl::BcType::Flux, "toy_flux", [](const fvm::BoundaryContext& ctx) {
    return 0.1 * (ctx.cell + 1) + 0.01 * ctx.dof + 0.02 * ctx.dir - 0.005 * ctx.band;
  });
  if (value_bc) {
    p->boundary("I", 2, dsl::BcType::Value, "toy_value", [](const fvm::BoundaryContext& ctx) {
      return 0.2 + 0.03 * ctx.dof + 0.001 * ctx.cell;
    });
  }
  p->conservation_form("I", eq);
  return p;
}

constexpr const char* kToySurfaceEq =
    "(Io[b] - I[d,b]) * k - surface(vg * upwind([Sx[d];Sy[d]], I[d,b]))";

class NativeBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    codegen::reset_jit_config_from_env();
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    cache_dir_ = ::testing::TempDir() + "finch_jit_" + info->name();
    fs::remove_all(cache_dir_);
    codegen::jit_config().cache_dir = cache_dir_;
    codegen::reset_native_memory_cache();
  }
  void TearDown() override {
    codegen::reset_jit_config_from_env();
    fs::remove_all(cache_dir_);
  }

  // Compiles the same toy problem under both backends, runs `steps`, and
  // requires bit-identical I fields with the JIT actually engaged.
  void expect_differential_identity(const std::string& eq,
                                    fvm::Layout layout = fvm::Layout::CellMajor,
                                    sym::TimeScheme scheme = sym::TimeScheme::ForwardEuler,
                                    bool value_bc = false, int steps = 3) {
    auto pv = toy_problem(eq, dsl::Backend::Vm, layout, scheme, value_bc);
    auto pn = toy_problem(eq, dsl::Backend::Native, layout, scheme, value_bc);
    auto sv = pv->compile(dsl::Target::CpuSerial);
    const double fb0 = counter("jit.fallback");
    auto sn = pn->compile(dsl::Target::CpuSerial);
    ASSERT_EQ(counter("jit.fallback"), fb0) << "JIT fell back instead of compiling: " << eq;
    sv->run(steps);
    sn->run(steps);
    EXPECT_EQ(counter("jit.verify.mismatch"), 0.0);
    EXPECT_TRUE(bits_equal(pv->fields().get("I"), pn->fields().get("I"))) << "eq: " << eq;
  }

  std::string cache_dir_;
};

// ---- differential matrix ---------------------------------------------------

TEST_F(NativeBackendTest, ToyUpwindSurfaceBitIdentical) {
  expect_differential_identity(kToySurfaceEq);
}

TEST_F(NativeBackendTest, VolumeOnlyBitIdentical) {
  expect_differential_identity("(Io[b] - I[d,b]) * k");
}

TEST_F(NativeBackendTest, ValueBcBitIdentical) {
  expect_differential_identity(kToySurfaceEq, fvm::Layout::CellMajor,
                               sym::TimeScheme::ForwardEuler, /*value_bc=*/true);
}

TEST_F(NativeBackendTest, Rk2MidpointBitIdentical) {
  expect_differential_identity(kToySurfaceEq, fvm::Layout::CellMajor,
                               sym::TimeScheme::RK2Midpoint, /*value_bc=*/true);
}

TEST_F(NativeBackendTest, DofMajorLayoutBitIdentical) {
  expect_differential_identity(kToySurfaceEq, fvm::Layout::DofMajor);
}

TEST_F(NativeBackendTest, ThreadedNativeMatchesSerialVm) {
  auto pv = toy_problem(kToySurfaceEq, dsl::Backend::Vm);
  auto pn = toy_problem(kToySurfaceEq, dsl::Backend::Native);
  rt::ThreadPool pool(3);
  pn->use_threads(&pool);
  auto sv = pv->compile(dsl::Target::CpuSerial);
  const double fb0 = counter("jit.fallback");
  auto sn = pn->compile(dsl::Target::CpuThreads);
  ASSERT_EQ(counter("jit.fallback"), fb0);
  sv->run(3);
  sn->run(3);
  EXPECT_TRUE(bits_equal(pv->fields().get("I"), pn->fields().get("I")));
}

TEST_F(NativeBackendTest, GrayModelBitIdentical) {
  bte::GrayScenario scen;
  scen.nx = scen.ny = 8;
  scen.ndirs = 4;
  scen.nsteps = 3;
  bte::GrayBteProblem gv(scen), gn(scen);
  gv.problem().execution_backend(dsl::Backend::Vm);
  gn.problem().execution_backend(dsl::Backend::Native);
  auto sv = gv.compile(dsl::Target::CpuSerial);
  const double fb0 = counter("jit.fallback");
  auto sn = gn.compile(dsl::Target::CpuSerial);
  ASSERT_EQ(counter("jit.fallback"), fb0);
  sv->run(scen.nsteps);
  sn->run(scen.nsteps);
  EXPECT_TRUE(bits_equal(gv.problem().fields().get("I"), gn.problem().fields().get("I")));
  EXPECT_TRUE(bits_equal(gv.problem().fields().get("T"), gn.problem().fields().get("T")));
}

TEST_F(NativeBackendTest, SpectralBteBitIdentical) {
  bte::BteScenario scen = bte::BteScenario::small();
  scen.nx = scen.ny = 8;
  scen.ndirs = 4;
  scen.nbands = 2;
  scen.nsteps = 2;
  auto phys = std::make_shared<const bte::BtePhysics>(scen.nbands, scen.ndirs);
  scen.backend = "vm";
  bte::BteProblem bv(scen, phys);
  scen.backend = "native";
  bte::BteProblem bn(scen, phys);
  auto sv = bv.compile(dsl::Target::CpuSerial);
  const double fb0 = counter("jit.fallback");
  auto sn = bn.compile(dsl::Target::CpuSerial);
  ASSERT_EQ(counter("jit.fallback"), fb0);
  sv->run(scen.nsteps);
  sn->run(scen.nsteps);
  EXPECT_TRUE(bits_equal(bv.problem().fields().get("I"), bn.problem().fields().get("I")));
  EXPECT_TRUE(bits_equal(bv.problem().fields().get("T"), bn.problem().fields().get("T")));
}

// ---- fuzz-generated conservation forms --------------------------------------

std::string fuzz_volume_expr(std::mt19937& rng, int depth) {
  static const char* leaves[] = {"I[d,b]", "Io[b]", "Sx[d]", "k", "0.5", "1.25", "2"};
  if (depth <= 0) return leaves[rng() % (sizeof(leaves) / sizeof(leaves[0]))];
  static const char* ops[] = {" + ", " - ", " * "};
  return "(" + fuzz_volume_expr(rng, depth - 1) + ops[rng() % 3] +
         fuzz_volume_expr(rng, depth - 1) + ")";
}

class NativeBackendFuzz : public NativeBackendTest,
                          public ::testing::WithParamInterface<uint32_t> {};

TEST_P(NativeBackendFuzz, FuzzedProgramsBitIdentical) {
  std::mt19937 rng(GetParam());
  std::string eq = fuzz_volume_expr(rng, 3);
  if (rng() % 2 == 0) eq += " - surface(vg * upwind([Sx[d];Sy[d]], I[d,b]))";
  expect_differential_identity(eq, fvm::Layout::CellMajor, sym::TimeScheme::ForwardEuler,
                               /*value_bc=*/rng() % 2 == 0, /*steps=*/2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NativeBackendFuzz, ::testing::Values(1u, 2u, 3u, 5u, 8u));

// ---- kernel cache -----------------------------------------------------------

TEST_F(NativeBackendTest, CacheMissThenDiskHitThenMemoryHit) {
  const double miss0 = counter("jit.cache.miss");
  const double hit0 = counter("jit.cache.hit");
  {
    auto p = toy_problem(kToySurfaceEq, dsl::Backend::Native);
    auto s = p->compile(dsl::Target::CpuSerial);
  }
  EXPECT_EQ(counter("jit.cache.miss"), miss0 + 1);
  EXPECT_EQ(counter("jit.cache.hit"), hit0);

  // Same IR again, but with the in-process handle cache dropped: the kernel
  // must come back from disk, not a recompile.
  codegen::reset_native_memory_cache();
  const double disk0 = counter("jit.cache.hit_disk");
  {
    auto p = toy_problem(kToySurfaceEq, dsl::Backend::Native);
    auto s = p->compile(dsl::Target::CpuSerial);
  }
  EXPECT_EQ(counter("jit.cache.miss"), miss0 + 1);
  EXPECT_EQ(counter("jit.cache.hit_disk"), disk0 + 1);

  // Third solve: served from process memory.
  const double mem0 = counter("jit.cache.hit_mem");
  {
    auto p = toy_problem(kToySurfaceEq, dsl::Backend::Native);
    auto s = p->compile(dsl::Target::CpuSerial);
  }
  EXPECT_EQ(counter("jit.cache.miss"), miss0 + 1);
  EXPECT_EQ(counter("jit.cache.hit_mem"), mem0 + 1);
}

TEST_F(NativeBackendTest, CorruptedCacheEntryIsEvictedAndRecompiled) {
  {
    auto p = toy_problem(kToySurfaceEq, dsl::Backend::Native);
    auto s = p->compile(dsl::Target::CpuSerial);
  }
  // Replace every cached shared object with garbage, atomically (a new inode
  // renamed over the entry — the way a crashed writer would leave one). The
  // first solve's mapping of the old inode stays intact; only the cache entry
  // is corrupt.
  int corrupted = 0;
  for (const auto& ent : fs::directory_iterator(cache_dir_)) {
    if (ent.path().extension() == ".so") {
      const fs::path garbage = ent.path().string() + ".garbage";
      std::ofstream(garbage, std::ios::trunc) << "not an elf object";
      fs::rename(garbage, ent.path());
      ++corrupted;
    }
  }
  ASSERT_GT(corrupted, 0);
  codegen::reset_native_memory_cache();
  const double corrupt0 = counter("jit.cache.corrupt");
  const double fb0 = counter("jit.fallback");
  auto pv = toy_problem(kToySurfaceEq, dsl::Backend::Vm);
  auto pn = toy_problem(kToySurfaceEq, dsl::Backend::Native);
  auto sv = pv->compile(dsl::Target::CpuSerial);
  auto sn = pn->compile(dsl::Target::CpuSerial);
  EXPECT_GE(counter("jit.cache.corrupt"), corrupt0 + 1);
  EXPECT_EQ(counter("jit.fallback"), fb0) << "recompile after eviction should succeed";
  sv->run(2);
  sn->run(2);
  EXPECT_TRUE(bits_equal(pv->fields().get("I"), pn->fields().get("I")));
}

// ---- negative paths: always the VM's answer, never a wrong one --------------

void expect_clean_fallback(const std::string& why) {
  const double fb0 = counter("jit.fallback");
  auto pv = toy_problem(kToySurfaceEq, dsl::Backend::Vm);
  auto pn = toy_problem(kToySurfaceEq, dsl::Backend::Native);
  auto sv = pv->compile(dsl::Target::CpuSerial);
  auto sn = pn->compile(dsl::Target::CpuSerial);
  EXPECT_GE(counter("jit.fallback"), fb0 + 1) << why;
  sv->run(3);
  sn->run(3);
  EXPECT_TRUE(bits_equal(pv->fields().get("I"), pn->fields().get("I"))) << why;
}

TEST_F(NativeBackendTest, MissingCompilerFallsBackToVm) {
  codegen::jit_config().compiler = "/nonexistent/finch-test-cxx";
  expect_clean_fallback("missing compiler");
}

TEST_F(NativeBackendTest, CompileErrorFallsBackToVm) {
  codegen::jit_config().extra_cflags = "--finch-definitely-not-a-flag";
  expect_clean_fallback("compile error");
}

TEST_F(NativeBackendTest, DisabledJitFallsBackToVm) {
  codegen::jit_config().disable = true;
  EXPECT_FALSE(codegen::native_backend_available());
  expect_clean_fallback("jit disabled");
}

TEST_F(NativeBackendTest, LoadReportsDiagnosticOnFailure) {
  codegen::jit_config().compiler = "/nonexistent/finch-test-cxx";
  codegen::NativePlan plan;
  plan.source = "int broken(";
  std::string err;
  EXPECT_FALSE(codegen::load_native_plan(plan, &err));
  EXPECT_NE(err.find("compile failed"), std::string::npos);
  EXPECT_NE(err.find("/nonexistent/finch-test-cxx"), std::string::npos);
  EXPECT_EQ(plan.fn, nullptr);
}

// ---- backend selection ------------------------------------------------------

TEST_F(NativeBackendTest, BackendStringsRoundTrip) {
  EXPECT_EQ(dsl::backend_from_string("vm"), dsl::Backend::Vm);
  EXPECT_EQ(dsl::backend_from_string("native"), dsl::Backend::Native);
  EXPECT_EQ(dsl::backend_from_string("auto"), dsl::Backend::Auto);
  EXPECT_STREQ(dsl::backend_to_string(dsl::Backend::Native), "native");
  EXPECT_THROW(dsl::backend_from_string("cuda"), std::invalid_argument);
}

TEST_F(NativeBackendTest, EnvSeedsDefaultBackend) {
  ::setenv("FINCH_BACKEND", "native", 1);
  EXPECT_EQ(dsl::default_backend_from_env(), dsl::Backend::Native);
  ::setenv("FINCH_BACKEND", "bogus", 1);
  EXPECT_EQ(dsl::default_backend_from_env(), dsl::Backend::Vm);
  ::unsetenv("FINCH_BACKEND");
  EXPECT_EQ(dsl::default_backend_from_env(), dsl::Backend::Vm);
}

TEST_F(NativeBackendTest, ExplicitVmBackendNeverTouchesTheJit) {
  const double miss0 = counter("jit.cache.miss");
  const double hit0 = counter("jit.cache.hit");
  auto p = toy_problem(kToySurfaceEq, dsl::Backend::Vm);
  auto s = p->compile(dsl::Target::CpuSerial);
  s->run(2);
  EXPECT_EQ(counter("jit.cache.miss"), miss0);
  EXPECT_EQ(counter("jit.cache.hit"), hit0);
}

TEST_F(NativeBackendTest, AutoUsesNativeWhenAvailableElseVm) {
  if (codegen::native_backend_available()) {
    const double batches0 = counter("jit.exec.batches");
    auto p = toy_problem(kToySurfaceEq, dsl::Backend::Auto);
    auto s = p->compile(dsl::Target::CpuSerial);
    s->run(1);
    EXPECT_GT(counter("jit.exec.batches"), batches0);
  }
  codegen::jit_config().disable = true;
  const double miss0 = counter("jit.cache.miss");
  auto p = toy_problem(kToySurfaceEq, dsl::Backend::Auto);
  auto s = p->compile(dsl::Target::CpuSerial);
  s->run(1);  // must run fine on the VM without counting a fallback attempt
  EXPECT_EQ(counter("jit.cache.miss"), miss0);
}

TEST_F(NativeBackendTest, GuardedSolverStaysOnVm) {
  const double batches0 = counter("jit.exec.batches");
  auto p = toy_problem(kToySurfaceEq, dsl::Backend::Native);
  auto s = p->compile(dsl::Target::CpuSerial);
  s->enable_nonfinite_guard();
  s->run(2);
  EXPECT_EQ(counter("jit.exec.batches"), batches0);
  EXPECT_GT(s->nonfinite_report().evals, 0);
  EXPECT_TRUE(s->nonfinite_report().clean());
}

// ---- emission ---------------------------------------------------------------

TEST_F(NativeBackendTest, EmittedSourceIsDeterministicAndStructured) {
  bte::GrayScenario scen;
  scen.nx = scen.ny = 8;
  scen.ndirs = 4;
  bte::GrayBteProblem g1(scen), g2(scen);
  const std::string s1 = g1.problem().generated_native_source();
  const std::string s2 = g2.problem().generated_native_source();
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1.find("extern \"C\" void finch_kernel_v1"), std::string::npos);
  EXPECT_NE(s1.find("finch_kernel_abi_version"), std::string::npos);
  EXPECT_NE(s1.find("-ffp-contract=off"), std::string::npos);
}

TEST_F(NativeBackendTest, CsePrunesTheUpwindExpansion) {
  const double before0 = counter("jit.ir.nodes_before");
  const double after0 = counter("jit.ir.nodes_after");
  auto p = toy_problem(kToySurfaceEq, dsl::Backend::Vm);
  (void)p->generated_native_source();
  const double before = counter("jit.ir.nodes_before") - before0;
  const double after = counter("jit.ir.nodes_after") - after0;
  ASSERT_GT(before, 0.0);
  // The upwind select evaluates s·n for the condition and both branches; CSE
  // must collapse those repeats, so the SSA graph is strictly smaller.
  EXPECT_LT(after, before);
}

TEST_F(NativeBackendTest, VerifyKnobIsHonored) {
  codegen::jit_config().verify_first_sweep = false;
  auto pv = toy_problem(kToySurfaceEq, dsl::Backend::Vm);
  auto pn = toy_problem(kToySurfaceEq, dsl::Backend::Native);
  auto sv = pv->compile(dsl::Target::CpuSerial);
  auto sn = pn->compile(dsl::Target::CpuSerial);
  sv->run(2);
  sn->run(2);
  EXPECT_TRUE(bits_equal(pv->fields().get("I"), pn->fields().get("I")));
}

}  // namespace
