// Phonon physics substrate: dispersion, bands, relaxation, equilibrium
// intensity, and the direction sets.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "bte/bands.hpp"
#include "bte/directions.hpp"
#include "bte/dispersion.hpp"
#include "bte/equilibrium.hpp"
#include "bte/relaxation.hpp"

using namespace finch::bte;

// ---- dispersion ------------------------------------------------------------

TEST(Dispersion, SiliconBranchShapes) {
  Dispersion si = Dispersion::silicon();
  // Literature values: omega_max(LA) ~ 7.7e13 rad/s, omega_max(TA) ~ 3.0e13.
  EXPECT_NEAR(si.la.omega_max(), 7.75e13, 0.1e13);
  EXPECT_NEAR(si.ta.omega_max(), 3.02e13, 0.1e13);
  // Group velocity at zone center equals the sound speed; decreases with k.
  EXPECT_DOUBLE_EQ(si.la.group_velocity(0), 9.01e3);
  EXPECT_LT(si.la.group_velocity(si.la.k_max), si.la.group_velocity(0));
  // TA flattens out at the zone edge.
  EXPECT_NEAR(si.ta.group_velocity(si.ta.k_max), 0.0, 50.0);
}

TEST(Dispersion, InverseDispersionRoundTrip) {
  Dispersion si = Dispersion::silicon();
  for (const BranchDispersion* bd : {&si.la, &si.ta}) {
    for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const double k = frac * bd->k_max;
      const double w = bd->omega(k);
      EXPECT_NEAR(bd->k_of_omega(w), k, 1e-6 * bd->k_max);
    }
  }
  EXPECT_THROW(si.la.k_of_omega(-1.0), std::domain_error);
  EXPECT_THROW(si.ta.k_of_omega(si.la.omega_max()), std::domain_error);
}

// ---- bands ------------------------------------------------------------------

TEST(Bands, PaperCountFortyGivesFiftyFive) {
  // §III.A: "40 frequency bands, which results in 40 longitudinal bands and
  // an additional 15 transverse bands" -> 55 total.
  BandSet set = make_bands(Dispersion::silicon(), 40);
  int la = 0, ta = 0;
  for (const auto& b : set.bands) (b.branch == Branch::LA ? la : ta)++;
  EXPECT_EQ(la, 40);
  EXPECT_EQ(ta, 15);
  EXPECT_EQ(set.size(), 55);
}

TEST(Bands, CoverSpectrumWithoutGaps) {
  BandSet set = make_bands(Dispersion::silicon(), 16);
  const double dw = Dispersion::silicon().la.omega_max() / 16;
  for (const auto& b : set.bands) {
    EXPECT_NEAR(b.d_omega(), dw, 1e-3 * dw);
    EXPECT_GT(b.omega_c, b.omega_lo);
    EXPECT_LT(b.omega_c, b.omega_hi);
    EXPECT_GT(b.vg, 0.0);
  }
}

TEST(Bands, TaBandsAreDoublyDegenerate) {
  BandSet set = make_bands(Dispersion::silicon(), 10);
  for (const auto& b : set.bands)
    EXPECT_DOUBLE_EQ(b.degeneracy, b.branch == Branch::TA ? 2.0 : 1.0);
}

class BandCounts : public ::testing::TestWithParam<int> {};

TEST_P(BandCounts, TaFractionTracksFrequencyRatio) {
  const int n = GetParam();
  BandSet set = make_bands(Dispersion::silicon(), n);
  int ta = 0;
  for (const auto& b : set.bands)
    if (b.branch == Branch::TA) ++ta;
  const double ratio = Dispersion::silicon().ta.omega_max() / Dispersion::silicon().la.omega_max();
  EXPECT_NEAR(static_cast<double>(ta) / n, ratio, 1.5 / n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BandCounts, ::testing::Values(8, 16, 40, 80));

// ---- relaxation --------------------------------------------------------------

TEST(Relaxation, RatesPositiveAndTemperatureSensitive) {
  Dispersion si = Dispersion::silicon();
  BandSet set = make_bands(si, 20);
  RelaxationModel rm = RelaxationModel::silicon(si);
  for (const auto& band : set.bands) {
    const double r300 = rm.inverse_tau(band, 300.0);
    const double r400 = rm.inverse_tau(band, 400.0);
    EXPECT_GT(r300, 0.0);
    EXPECT_GT(r400, r300);  // more scattering when hotter
  }
}

TEST(Relaxation, SiliconTimescaleOrderOfMagnitude) {
  // Mid-spectrum LA phonons at 300 K relax on ~1e-11..1e-9 s scales.
  Dispersion si = Dispersion::silicon();
  BandSet set = make_bands(si, 40);
  RelaxationModel rm = RelaxationModel::silicon(si);
  const Band& mid = set.bands[20];  // LA, mid spectrum
  const double tau = rm.tau(mid, 300.0);
  EXPECT_GT(tau, 1e-12);
  EXPECT_LT(tau, 1e-8);
}

TEST(Relaxation, HigherFrequencyScattersMore) {
  Dispersion si = Dispersion::silicon();
  BandSet set = make_bands(si, 40);
  RelaxationModel rm = RelaxationModel::silicon(si);
  // Within the LA branch, rates grow with frequency.
  EXPECT_LT(rm.inverse_tau(set.bands[2], 300.0), rm.inverse_tau(set.bands[30], 300.0));
}

// ---- equilibrium intensity ----------------------------------------------------

TEST(Equilibrium, BoseEinsteinProperties) {
  EXPECT_GT(bose_einstein(1e13, 300.0), bose_einstein(5e13, 300.0));  // decreasing in w
  EXPECT_GT(bose_einstein(1e13, 400.0), bose_einstein(1e13, 300.0));  // increasing in T
  EXPECT_NEAR(bose_einstein(1e13, 300.0), 1.0 / std::expm1(kHbar * 1e13 / (kBoltzmann * 300.0)), 1e-12);
  // Derivative matches finite differences.
  const double h = 1e-3;
  const double fd = (bose_einstein(2e13, 300.0 + h) - bose_einstein(2e13, 300.0 - h)) / (2 * h);
  EXPECT_NEAR(d_bose_einstein_dT(2e13, 300.0), fd, 1e-6 * std::abs(fd));
}

TEST(Equilibrium, IntensityIncreasesWithTemperature) {
  BandSet set = make_bands(Dispersion::silicon(), 20);
  for (int b : {0, 5, 12, 19}) {
    EXPECT_GT(equilibrium_intensity(set.bands[static_cast<size_t>(b)], 350.0),
              equilibrium_intensity(set.bands[static_cast<size_t>(b)], 300.0));
  }
}

TEST(Equilibrium, TableMatchesDirectEvaluation) {
  Dispersion si = Dispersion::silicon();
  BandSet set = make_bands(si, 12);
  RelaxationModel rm = RelaxationModel::silicon(si);
  EquilibriumTable table(set, rm, 250.0, 450.0, 0.5);
  for (int b = 0; b < set.size(); ++b) {
    for (double T : {273.0, 300.0, 312.7, 380.0}) {
      EXPECT_NEAR(table.I0(b, T), equilibrium_intensity(set.bands[static_cast<size_t>(b)], T),
                  1e-4 * equilibrium_intensity(set.bands[static_cast<size_t>(b)], T) + 1e-12);
      EXPECT_NEAR(table.beta(b, T), rm.inverse_tau(set.bands[static_cast<size_t>(b)], T),
                  1e-4 * rm.inverse_tau(set.bands[static_cast<size_t>(b)], T));
    }
  }
}

TEST(Equilibrium, TemperatureSolveRecoversEquilibrium) {
  // If G_b = 4 pi I0_b(T*), the solver must return T*.
  Dispersion si = Dispersion::silicon();
  BandSet set = make_bands(si, 16);
  EquilibriumTable table(set, RelaxationModel::silicon(si), 250.0, 450.0, 0.25);
  for (double T_star : {280.0, 300.0, 333.3, 420.0}) {
    std::vector<double> G(static_cast<size_t>(set.size()));
    for (int b = 0; b < set.size(); ++b) G[static_cast<size_t>(b)] = 4.0 * M_PI * table.I0(b, T_star);
    EXPECT_NEAR(table.solve_temperature(G, 300.0), T_star, 0.02);
    EXPECT_NEAR(table.solve_energy_temperature(G, 300.0), T_star, 0.02);
  }
}

TEST(Equilibrium, TemperatureSolveMonotoneInEnergy) {
  Dispersion si = Dispersion::silicon();
  BandSet set = make_bands(si, 10);
  EquilibriumTable table(set, RelaxationModel::silicon(si));
  std::vector<double> G(static_cast<size_t>(set.size()));
  for (int b = 0; b < set.size(); ++b) G[static_cast<size_t>(b)] = 4.0 * M_PI * table.I0(b, 300.0);
  const double T1 = table.solve_temperature(G, 300.0);
  for (auto& g : G) g *= 1.05;  // add energy
  const double T2 = table.solve_temperature(G, 300.0);
  EXPECT_GT(T2, T1);
}

// ---- directions ----------------------------------------------------------------

TEST(Directions2D, UnitVectorsAndWeightSum) {
  DirectionSet set = make_directions_2d(20);
  EXPECT_EQ(set.size(), 20);
  double wsum = 0;
  for (int d = 0; d < set.size(); ++d) {
    EXPECT_NEAR(set.s[static_cast<size_t>(d)].norm(), 1.0, 1e-14);
    wsum += set.weight[static_cast<size_t>(d)];
  }
  EXPECT_NEAR(wsum, 4.0 * M_PI, 1e-12);
}

TEST(Directions2D, FirstMomentVanishes) {
  DirectionSet set = make_directions_2d(16);
  finch::mesh::Vec3 m{};
  for (int d = 0; d < set.size(); ++d) m += set.s[static_cast<size_t>(d)] * set.weight[static_cast<size_t>(d)];
  EXPECT_NEAR(m.norm(), 0.0, 1e-10);
}

TEST(Directions2D, ClosedUnderAxisReflections) {
  for (int n : {8, 12, 20}) {
    DirectionSet set = make_directions_2d(n);
    for (int d = 0; d < n; ++d) {
      const int rx = set.reflect_x[static_cast<size_t>(d)];
      const int ry = set.reflect_y[static_cast<size_t>(d)];
      ASSERT_GE(rx, 0);
      ASSERT_GE(ry, 0);
      EXPECT_NEAR(set.s[static_cast<size_t>(rx)].x, -set.s[static_cast<size_t>(d)].x, 1e-12);
      EXPECT_NEAR(set.s[static_cast<size_t>(rx)].y, set.s[static_cast<size_t>(d)].y, 1e-12);
      EXPECT_NEAR(set.s[static_cast<size_t>(ry)].y, -set.s[static_cast<size_t>(d)].y, 1e-12);
      // Reflection is an involution.
      EXPECT_EQ(set.reflect_x[static_cast<size_t>(rx)], d);
      EXPECT_EQ(set.reflect_y[static_cast<size_t>(ry)], d);
    }
  }
}

TEST(Directions2D, ReflectDispatchesOnNormalAxis) {
  DirectionSet set = make_directions_2d(8);
  const int d = 1;
  EXPECT_EQ(set.reflect(d, {1, 0, 0}), set.reflect_x[d]);
  EXPECT_EQ(set.reflect(d, {-1, 0, 0}), set.reflect_x[d]);
  EXPECT_EQ(set.reflect(d, {0, 1, 0}), set.reflect_y[d]);
}

TEST(Directions2D, RejectsOddCounts) {
  EXPECT_THROW(make_directions_2d(7), std::invalid_argument);
  EXPECT_THROW(make_directions_2d(0), std::invalid_argument);
}

TEST(Directions3D, WeightsSumToFourPiAndMomentsVanish) {
  DirectionSet set = make_directions_3d(4, 8);
  EXPECT_EQ(set.size(), 32);
  double wsum = 0;
  finch::mesh::Vec3 m{};
  for (int d = 0; d < set.size(); ++d) {
    EXPECT_NEAR(set.s[static_cast<size_t>(d)].norm(), 1.0, 1e-12);
    wsum += set.weight[static_cast<size_t>(d)];
    m += set.s[static_cast<size_t>(d)] * set.weight[static_cast<size_t>(d)];
  }
  EXPECT_NEAR(wsum, 4.0 * M_PI, 1e-10);
  EXPECT_NEAR(m.norm(), 0.0, 1e-9);
}

TEST(Directions3D, SecondMomentIsIsotropic) {
  // integral s_i s_j dOmega = (4 pi / 3) delta_ij
  DirectionSet set = make_directions_3d(6, 12);
  double xx = 0, yy = 0, zz = 0, xy = 0;
  for (int d = 0; d < set.size(); ++d) {
    const auto& s = set.s[static_cast<size_t>(d)];
    const double w = set.weight[static_cast<size_t>(d)];
    xx += w * s.x * s.x;
    yy += w * s.y * s.y;
    zz += w * s.z * s.z;
    xy += w * s.x * s.y;
  }
  const double third = 4.0 * M_PI / 3.0;
  EXPECT_NEAR(xx, third, 1e-8);
  EXPECT_NEAR(yy, third, 1e-8);
  EXPECT_NEAR(zz, third, 1e-8);
  EXPECT_NEAR(xy, 0.0, 1e-10);
}

TEST(Directions3D, ClosedUnderReflections) {
  DirectionSet set = make_directions_3d(4, 8);
  for (int d = 0; d < set.size(); ++d) {
    EXPECT_GE(set.reflect_x[static_cast<size_t>(d)], 0);
    EXPECT_GE(set.reflect_y[static_cast<size_t>(d)], 0);
    EXPECT_GE(set.reflect_z[static_cast<size_t>(d)], 0);
  }
}

// ---- integrated physics validation ---------------------------------------------

TEST(SiliconPhysics, BulkThermalConductivityOrderOfMagnitude) {
  // Kinetic-theory conductivity k = (1/3) sum_b C_b vg_b^2 tau_b with
  // C_b = 4 pi (dI0_b/dT) / vg_b. For Holland-type silicon parameters at
  // 300 K the literature value is ~150 W/(m K); the model should land within
  // a factor of ~2 (validating dispersion, DOS, occupancy and scattering
  // together).
  Dispersion si = Dispersion::silicon();
  BandSet set = make_bands(si, 40);
  RelaxationModel rm = RelaxationModel::silicon(si);
  EquilibriumTable table(set, rm, 250.0, 350.0, 0.25);
  double k = 0.0;
  for (int b = 0; b < set.size(); ++b) {
    const Band& band = set.bands[static_cast<size_t>(b)];
    const double dI0dT = table.dI0_dT(b, 300.0);
    const double C_b = 4.0 * M_PI * dI0dT / band.vg;
    k += (1.0 / 3.0) * C_b * band.vg * band.vg * rm.tau(band, 300.0);
  }
  EXPECT_GT(k, 50.0);
  EXPECT_LT(k, 500.0);
}

TEST(SiliconPhysics, HeatCapacityNearDulongPetit) {
  // Total volumetric heat capacity at 300 K: silicon's experimental value is
  // ~1.66e6 J/(m^3 K); the quadratic-dispersion model typically lands within
  // a factor ~2 (it misses optical phonons).
  Dispersion si = Dispersion::silicon();
  BandSet set = make_bands(si, 40);
  RelaxationModel rm = RelaxationModel::silicon(si);
  EquilibriumTable table(set, rm, 250.0, 350.0, 0.25);
  double cv = 0.0;
  for (int b = 0; b < set.size(); ++b)
    cv += 4.0 * M_PI * table.dI0_dT(b, 300.0) / set.bands[static_cast<size_t>(b)].vg;
  EXPECT_GT(cv, 0.4e6);
  EXPECT_LT(cv, 4.0e6);
}

TEST(SiliconPhysics, ConductivityDecreasesWithTemperature) {
  // Above the Debye peak, phonon-phonon scattering strengthens with T and
  // bulk conductivity falls (silicon: ~150 at 300 K, ~100 at 400 K).
  Dispersion si = Dispersion::silicon();
  BandSet set = make_bands(si, 40);
  RelaxationModel rm = RelaxationModel::silicon(si);
  EquilibriumTable table(set, rm, 250.0, 450.0, 0.25);
  auto conductivity = [&](double T) {
    double k = 0.0;
    for (int b = 0; b < set.size(); ++b) {
      const Band& band = set.bands[static_cast<size_t>(b)];
      k += (4.0 * M_PI / 3.0) * table.dI0_dT(b, T) * band.vg * rm.tau(band, T);
    }
    return k;
  };
  EXPECT_GT(conductivity(300.0), conductivity(400.0));
}
