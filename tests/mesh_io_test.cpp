// Mesh-file I/O: Gmsh 2.2 and MEDIT round trips (the two import formats the
// paper's DSL accepts), and malformed-input rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "mesh/gmsh_io.hpp"
#include "mesh/medit_io.hpp"

using namespace finch::mesh;

namespace {

void expect_same_mesh(const Mesh& a, const Mesh& b) {
  ASSERT_EQ(a.num_cells(), b.num_cells());
  ASSERT_EQ(a.num_faces(), b.num_faces());
  for (int32_t c = 0; c < a.num_cells(); ++c) {
    EXPECT_NEAR(a.cell_volume(c), b.cell_volume(c), 1e-15);
    EXPECT_NEAR((a.cell_centroid(c) - b.cell_centroid(c)).norm(), 0.0, 1e-12);
  }
  for (int32_t f = 0; f < a.num_faces(); ++f) {
    EXPECT_EQ(a.face(f).owner, b.face(f).owner);
    EXPECT_EQ(a.face(f).neighbor, b.face(f).neighbor);
    EXPECT_EQ(a.face(f).boundary_region, b.face(f).boundary_region);
  }
}

}  // namespace

TEST(GmshIo, RoundTripSquare) {
  Mesh m = Mesh::structured_quad(6, 4, 3.0, 2.0);
  std::stringstream ss;
  write_gmsh_quad(m, ss, 6, 4, 3.0, 2.0);
  Mesh back = read_gmsh_quad(ss);
  expect_same_mesh(m, back);
}

TEST(GmshIo, RoundTripPaperDomain) {
  Mesh m = Mesh::structured_quad(12, 12, 525e-6, 525e-6);
  std::stringstream ss;
  write_gmsh_quad(m, ss, 12, 12, 525e-6, 525e-6);
  Mesh back = read_gmsh_quad(ss);
  expect_same_mesh(m, back);
}

TEST(GmshIo, WrittenFileHasBoundaryTags) {
  Mesh m = Mesh::structured_quad(3, 3, 1.0, 1.0);
  std::stringstream ss;
  write_gmsh_quad(m, ss, 3, 3, 1.0, 1.0);
  const std::string text = ss.str();
  EXPECT_NE(text.find("$MeshFormat"), std::string::npos);
  EXPECT_NE(text.find("$Nodes"), std::string::npos);
  EXPECT_NE(text.find("$Elements"), std::string::npos);
  // 4 physical boundary regions appear as line elements with tags 1..4.
  EXPECT_NE(text.find(" 1 2 1 1 "), std::string::npos);
  EXPECT_NE(text.find(" 1 2 4 4 "), std::string::npos);
}

TEST(GmshIo, RejectsGarbage) {
  std::stringstream ss("this is not a mesh");
  EXPECT_THROW(read_gmsh_quad(ss), std::runtime_error);
}

TEST(GmshIo, RejectsNonRectangularNodeSet) {
  // Handcrafted file with 3 nodes and one (degenerate) quad: not a lattice.
  std::stringstream ss(
      "$MeshFormat\n2.2 0 8\n$EndMeshFormat\n"
      "$Nodes\n3\n1 0 0 0\n2 1 0 0\n3 0.5 1 0\n$EndNodes\n"
      "$Elements\n1\n1 3 2 0 0 1 2 3 3\n$EndElements\n");
  EXPECT_THROW(read_gmsh_quad(ss), std::runtime_error);
}

TEST(MeditIo, RoundTripSquare) {
  Mesh m = Mesh::structured_quad(5, 7, 2.5, 3.5);
  std::stringstream ss;
  write_medit_quad(m, ss, 5, 7, 2.5, 3.5);
  Mesh back = read_medit_quad(ss);
  expect_same_mesh(m, back);
}

TEST(MeditIo, WrittenFileStructure) {
  Mesh m = Mesh::structured_quad(2, 2, 1.0, 1.0);
  std::stringstream ss;
  write_medit_quad(m, ss, 2, 2, 1.0, 1.0);
  const std::string text = ss.str();
  EXPECT_NE(text.find("MeshVersionFormatted"), std::string::npos);
  EXPECT_NE(text.find("Vertices\n9"), std::string::npos);
  EXPECT_NE(text.find("Quadrilaterals\n4"), std::string::npos);
  EXPECT_NE(text.find("Edges\n8"), std::string::npos);
}

TEST(MeditIo, RejectsGarbage) {
  std::stringstream ss("Vertices\n0\nEnd\n");
  EXPECT_THROW(read_medit_quad(ss), std::runtime_error);
}

TEST(MeshIoFiles, FileRoundTripThroughDisk) {
  Mesh m = Mesh::structured_quad(4, 3, 2.0, 1.5);
  const std::string g = "/tmp/finch_test_mesh.msh";
  const std::string md = "/tmp/finch_test_mesh.mesh";
  write_gmsh_quad_file(m, g, 4, 3, 2.0, 1.5);
  write_medit_quad_file(m, md, 4, 3, 2.0, 1.5);
  expect_same_mesh(m, read_gmsh_quad_file(g));
  expect_same_mesh(m, read_medit_quad_file(md));
  EXPECT_THROW(read_gmsh_quad_file("/tmp/definitely_missing_mesh_file.msh"), std::runtime_error);
}
