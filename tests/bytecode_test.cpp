// Bytecode compiler/interpreter: lowering of each node kind, binding
// resolution (self/neighbor/ghost), index addressing, and static analysis.
#include <gtest/gtest.h>

#include "core/codegen/bytecode.hpp"
#include "core/symbolic/parser.hpp"
#include "core/symbolic/simplify.hpp"

using namespace finch;
using codegen::CompileEnv;
using codegen::EvalContext;
using codegen::Program;

namespace {

struct Fixture {
  sym::EntityTable table;
  fvm::FieldSet fields;
  std::map<std::string, std::vector<double>> coefs;
  std::map<std::string, double> scalars;
  CompileEnv env;

  Fixture() {
    table.declare_index("d", 1, 4);
    table.declare_index("b", 1, 3);
    table.declare({"I", sym::EntityKind::Variable, 1, {"d", "b"}});
    table.declare({"Io", sym::EntityKind::Variable, 1, {"b"}});
    table.declare({"u", sym::EntityKind::Variable, 1, {}});
    table.declare({"Sx", sym::EntityKind::Coefficient, 1, {"d"}});
    table.declare({"k", sym::EntityKind::Coefficient, 1, {}});

    fields.add("I", 5, 12);
    fields.add("Io", 5, 3);
    fields.add("u", 5, 1);
    for (int32_t c = 0; c < 5; ++c) {
      for (int32_t dof = 0; dof < 12; ++dof) fields.get("I").at(c, dof) = 100.0 * c + dof;
      for (int32_t dof = 0; dof < 3; ++dof) fields.get("Io").at(c, dof) = 1000.0 * c + dof;
      fields.get("u").at(c, 0) = 7.0 + c;
    }
    coefs["Sx"] = {0.1, 0.2, 0.3, 0.4};
    scalars["k"] = 2.5;

    env.table = &table;
    env.index_order = {"b", "d"};  // alphabetical, matching the solvers
    env.index_extent = {3, 4};
    env.fields = &fields;
    env.coefficients = &coefs;
    env.scalar_coefficients = &scalars;
  }

  double run(const std::string& expr_str, EvalContext ctx) {
    sym::Expr e = sym::simplify(sym::parse_expression(expr_str, table));
    Program p = codegen::compile(e, env);
    return codegen::eval(p, ctx);
  }
};

}  // namespace

TEST(Bytecode, ArithmeticAndDt) {
  Fixture f;
  EvalContext ctx;
  ctx.dt = 0.5;
  EXPECT_DOUBLE_EQ(f.run("1 + 2*3", ctx), 7.0);
  EXPECT_DOUBLE_EQ(f.run("dt * 4", ctx), 2.0);
  EXPECT_DOUBLE_EQ(f.run("10 / 4", ctx), 2.5);
  EXPECT_DOUBLE_EQ(f.run("2 ^ 10", ctx), 1024.0);
}

TEST(Bytecode, ScalarCoefficientAndField) {
  Fixture f;
  EvalContext ctx;
  ctx.cell = 2;
  EXPECT_DOUBLE_EQ(f.run("k * u", ctx), 2.5 * 9.0);
}

TEST(Bytecode, IndexedFieldAddressing) {
  Fixture f;
  EvalContext ctx;
  ctx.cell = 1;
  // loop slots: b=0, d=1. I[d,b] dof = d + 4*b.
  ctx.loop_values = {2, 3, 0, 0};  // b=2, d=3 -> dof 11
  EXPECT_DOUBLE_EQ(f.run("I[d,b]", ctx), 111.0);
  EXPECT_DOUBLE_EQ(f.run("Io[b]", ctx), 1002.0);
}

TEST(Bytecode, IndexedCoefficient) {
  Fixture f;
  EvalContext ctx;
  ctx.loop_values = {0, 2, 0, 0};  // d=2
  EXPECT_DOUBLE_EQ(f.run("Sx[d]", ctx), 0.3);
}

TEST(Bytecode, NeighborLoadAndGhost) {
  Fixture f;
  f.table.declare({"w", sym::EntityKind::Variable, 1, {}});  // not used; keep table realistic
  sym::Expr e = sym::entity("u", sym::EntityKind::Variable, 1, {}, sym::CellSide::Cell2);
  Program p = codegen::compile(e, f.env);
  EvalContext ctx;
  ctx.cell = 0;
  ctx.neighbor = 3;
  EXPECT_DOUBLE_EQ(codegen::eval(p, ctx), 10.0);  // u[3]
  // Boundary: ghost injection for the matching field.
  ctx.neighbor = -1;
  ctx.ghost_field = &f.fields.get("u");
  ctx.ghost_value = -42.0;
  EXPECT_DOUBLE_EQ(codegen::eval(p, ctx), -42.0);
  // Boundary without ghost: falls back to self.
  ctx.ghost_field = nullptr;
  EXPECT_DOUBLE_EQ(codegen::eval(p, ctx), 7.0);
}

TEST(Bytecode, NormalComponents) {
  Fixture f;
  sym::Expr e = sym::add({sym::mul({sym::num(2.0), sym::sym("NORMAL_1")}), sym::sym("NORMAL_2")});
  Program p = codegen::compile(e, f.env);
  EvalContext ctx;
  ctx.normal = {0.5, -1.0, 0.0};
  EXPECT_DOUBLE_EQ(codegen::eval(p, ctx), 0.0);
}

TEST(Bytecode, ConditionalSelect) {
  Fixture f;
  EvalContext ctx;
  EXPECT_DOUBLE_EQ(f.run("conditional(3 > 2, 10, 20)", ctx), 10.0);
  EXPECT_DOUBLE_EQ(f.run("conditional(1 > 2, 10, 20)", ctx), 20.0);
  EXPECT_DOUBLE_EQ(f.run("conditional(2 >= 2, 1, 0)", ctx), 1.0);
  EXPECT_DOUBLE_EQ(f.run("conditional(2 != 2, 1, 0)", ctx), 0.0);
}

TEST(Bytecode, MathBuiltins) {
  Fixture f;
  EvalContext ctx;
  EXPECT_NEAR(f.run("exp(1)", ctx), 2.718281828, 1e-8);
  EXPECT_DOUBLE_EQ(f.run("sqrt(16)", ctx), 4.0);
  EXPECT_DOUBLE_EQ(f.run("abs(0 - 3)", ctx), 3.0);
}

TEST(Bytecode, ErrorsOnMarkersAndUnknowns) {
  Fixture f;
  EvalContext ctx;
  EXPECT_THROW(f.run("SURFACE * u", ctx), codegen::CompileError);
  EXPECT_THROW(f.run("mystery_symbol + 1", ctx), codegen::CompileError);
  EXPECT_THROW(f.run("mystery_call(u)", ctx), codegen::CompileError);
}

TEST(Bytecode, AnalyzeCountsFlopsAndLoads) {
  Fixture f;
  sym::Expr e = sym::simplify(sym::parse_expression("k*u + Io[b]*2", f.table));
  Program p = codegen::compile(e, f.env);
  auto stats = p.analyze();
  EXPECT_EQ(stats.loads, 3);          // k, u, Io
  EXPECT_GE(stats.flops, 3);          // two muls + one add
  EXPECT_GE(stats.fma_pairs, 1);      // mul feeding add
}

TEST(Bytecode, DisassembleMentionsBindings) {
  Fixture f;
  sym::Expr e = sym::simplify(sym::parse_expression("k * u", f.table));
  Program p = codegen::compile(e, f.env);
  std::string d = codegen::disassemble(p);
  EXPECT_NE(d.find("load"), std::string::npos);
  EXPECT_NE(d.find("; k"), std::string::npos);
  EXPECT_NE(d.find("; u"), std::string::npos);
  EXPECT_NE(d.find("ret"), std::string::npos);
}

TEST(Bytecode, SquareLowersToMul) {
  Fixture f;
  EvalContext ctx;
  ctx.cell = 1;
  EXPECT_DOUBLE_EQ(f.run("u ^ 2", ctx), 64.0);
}
