// Multi-GPU hybrid solver tests: numerical identity with the serial solver
// for any device count, device-counter accounting, and the Fig. 8 breakdown
// shape (temperature update dominates the accelerated version).
#include <gtest/gtest.h>

#include <memory>

#include "bte/direct_solver.hpp"
#include "bte/multi_gpu_solver.hpp"

using namespace finch;
using namespace finch::bte;

namespace {

std::shared_ptr<const BtePhysics> phys() {
  static auto p = std::make_shared<const BtePhysics>(6, 8);
  return p;
}

BteScenario scen() {
  BteScenario s;
  s.nx = 10;
  s.ny = 8;
  s.lx = s.ly = 50e-6;
  s.hot_w = 20e-6;
  s.ndirs = 8;
  s.nbands = 6;
  s.dt = 1e-12;
  return s;
}

}  // namespace

class GpuCounts : public ::testing::TestWithParam<int> {};

TEST_P(GpuCounts, BitIdenticalToSerial) {
  const int ndev = GetParam();
  BteScenario s = scen();
  DirectSolver serial(s, phys());
  MultiGpuSolver multi(s, phys(), ndev);
  serial.run(12);
  multi.run(12);
  const auto& a = serial.intensity();
  const auto b = multi.gather_intensity();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << i;
  for (size_t i = 0; i < serial.temperature().size(); ++i)
    ASSERT_EQ(serial.temperature()[i], multi.temperature()[i]);
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, GpuCounts, ::testing::Values(1, 2, 4, 8));

TEST(MultiGpu, DevicesLaunchAndTransfer) {
  BteScenario s = scen();
  MultiGpuSolver multi(s, phys(), 2);
  multi.run(5);
  for (int d = 0; d < multi.num_devices(); ++d) {
    const auto& c = multi.device(d).counters();
    EXPECT_EQ(c.kernel_launches, 5);
    EXPECT_GT(c.bytes_h2d, 0);
    EXPECT_GT(c.bytes_d2h, 0);
    EXPECT_GT(c.kernel_seconds, 0.0);
  }
}

TEST(MultiGpu, WorkSplitsAcrossDevices) {
  // With 2 devices each owns half the bands: per-device kernel flops halve.
  BteScenario s = scen();
  MultiGpuSolver one(s, phys(), 1), two(s, phys(), 2);
  one.run(3);
  two.run(3);
  const double f1 = one.device(0).counters().total_flops;
  const double f2 = two.device(0).counters().total_flops + two.device(1).counters().total_flops;
  EXPECT_NEAR(f1, f2, 1e-6 * f1);  // same total work
  EXPECT_NEAR(two.device(0).counters().total_flops, f1 / 2, 0.35 * f1);  // split
}

TEST(MultiGpu, TemperatureUpdateDominatesPhases) {
  // Fig. 8's shape on the executing solver: the CPU temperature update is the
  // dominant phase of the accelerated version (the kernel is modeled-fast).
  BteScenario s = scen();
  MultiGpuSolver multi(s, phys(), 2);
  multi.run(10);
  const auto& ph = multi.phases();
  EXPECT_GT(ph.temperature, 0.0);
  EXPECT_GT(ph.intensity, 0.0);
  EXPECT_GT(ph.communication, 0.0);
}

TEST(MultiGpu, RejectsBadDeviceCounts) {
  BteScenario s = scen();
  EXPECT_THROW(MultiGpuSolver(s, phys(), 0), std::invalid_argument);
  EXPECT_THROW(MultiGpuSolver(s, phys(), 500), std::invalid_argument);
}
