// Resilient job supervisor: terminal-state guarantees, policy precedence
// (cancel > quarantine > retry > shed), retry-with-resume, the poison circuit
// breaker, admission control with fallback ladders, deadline drains, and
// crash-restart adoption of orphaned durable jobs.
//
// The tentpole property: every submitted job reaches exactly one terminal
// state, Completed jobs are bit-exact vs a fault-free reference of whatever
// configuration actually ran, and retries of durable jobs resume from the
// newest manifest checkpoint instead of replaying from step 0 — all judged
// by the bte::SupervisorCampaign oracle that the CI soak reuses.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "bte/solver_factory.hpp"
#include "bte/supervisor_campaign.hpp"
#include "runtime/chaos.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/memory.hpp"
#include "svc/job_file.hpp"
#include "svc/supervisor.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#define FINCH_HAVE_FORK 1
#endif

using namespace finch;
using namespace finch::svc;

namespace {

bte::BteScenario base_scenario() {
  bte::BteScenario s;
  s.lx = s.ly = 50e-6;
  s.hot_w = 20e-6;
  s.dt = 1e-12;
  return s;
}

// Small default job: dims are overridden per test where it matters.
JobSpec small_job(const std::string& id, const std::string& solver = "cell") {
  JobSpec spec;
  spec.id = id;
  spec.solver = solver;
  spec.nparts = solver == "mgpu" ? 2 : 3;
  spec.nx = 12;
  spec.ny = 8;
  spec.ndirs = 8;
  spec.nbands = 6;
  spec.nsteps = 8;
  spec.seed = 7;
  return spec;
}

JobSpec poison_job(const std::string& id) {
  JobSpec spec = small_job(id);
  spec.nparts = 4;
  spec.max_rollbacks = 0;  // any corruption is immediately fatal
  rt::ChaosFault f;
  f.kind = rt::FaultKind::TransferCorruption;
  f.site = "halo";
  f.first_event = 0;
  f.stride = 1;
  f.count = 5000;
  spec.faults.push_back(f);
  return spec;
}

std::string fresh_root(const std::string& name) {
  const std::string root = "supervisor_" + name;
#if defined(__unix__) || defined(__APPLE__)
  const std::string cmd = "rm -rf " + root;
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
#endif
  return root;
}

JobOutcome only(const std::vector<JobOutcome>& outcomes) {
  EXPECT_EQ(outcomes.size(), 1u);
  return outcomes.front();
}

}  // namespace

TEST(SupervisorPolicy, OptionValidationRejectsContradictions) {
  SupervisorOptions bad;
  bad.retry.jitter_frac = 1.5;
  EXPECT_THROW(validate_supervisor_options(bad), std::invalid_argument);
  bad = SupervisorOptions{};
  bad.quarantine.threshold = 0;
  EXPECT_THROW(validate_supervisor_options(bad), std::invalid_argument);
  bad = SupervisorOptions{};
  bad.retry.backoff_max_s = 0.1;
  bad.retry.backoff_base_s = 0.5;
  EXPECT_THROW(validate_supervisor_options(bad), std::invalid_argument);
  bad = SupervisorOptions{};
  bad.retry.max_retries = -1;
  EXPECT_THROW(validate_supervisor_options(bad), std::invalid_argument);
}

TEST(SupervisorPolicy, BackoffIsDeterministicDoublesAndCaps) {
  RetryPolicy p;
  p.backoff_base_s = 0.5;
  p.backoff_max_s = 4.0;
  p.jitter_frac = 0.25;
  // Deterministic: same (job, failure index) -> bit-identical delay.
  for (int k = 0; k < 6; ++k)
    EXPECT_EQ(backoff_with_jitter(p, "job-a", k), backoff_with_jitter(p, "job-a", k));
  // Distinct jobs jitter differently at the same failure index.
  EXPECT_NE(backoff_with_jitter(p, "job-a", 1), backoff_with_jitter(p, "job-b", 1));
  // Exponential base growth, capped before jitter: never above cap*(1+jitter).
  RetryPolicy plain = p;
  plain.jitter_frac = 0.0;
  EXPECT_DOUBLE_EQ(backoff_with_jitter(plain, "j", 0), 0.5);
  EXPECT_DOUBLE_EQ(backoff_with_jitter(plain, "j", 1), 1.0);
  EXPECT_DOUBLE_EQ(backoff_with_jitter(plain, "j", 2), 2.0);
  EXPECT_DOUBLE_EQ(backoff_with_jitter(plain, "j", 3), 4.0);
  EXPECT_DOUBLE_EQ(backoff_with_jitter(plain, "j", 9), 4.0);  // cap holds
  for (int k = 0; k < 12; ++k) {
    const double d = backoff_with_jitter(p, "job-a", k);
    EXPECT_LE(d, p.backoff_max_s * (1.0 + p.jitter_frac));
    EXPECT_GE(d, p.backoff_base_s);
  }
}

TEST(SupervisorJobFile, RoundTripAndMalformedRejection) {
  JobSpec a = poison_job("alpha");
  a.deadline_steps = 5;
  a.ckpt_interval = 2;
  JobConfig fb;
  fb.nx = 8;
  fb.ny = 6;
  a.fallbacks.push_back(fb);
  JobSpec b = small_job("beta", "mgpu");

  const std::string json = jobs_to_json({a, b});
  const std::vector<JobSpec> round = jobs_from_json(json);
  ASSERT_EQ(round.size(), 2u);
  EXPECT_EQ(round[0].id, "alpha");
  EXPECT_EQ(round[0].max_rollbacks, 0);
  EXPECT_EQ(round[0].deadline_steps, 5);
  ASSERT_EQ(round[0].faults.size(), 1u);
  EXPECT_EQ(round[0].faults[0].kind, rt::FaultKind::TransferCorruption);
  EXPECT_EQ(round[0].faults[0].count, 5000);
  ASSERT_EQ(round[0].fallbacks.size(), 1u);
  EXPECT_EQ(round[0].fallbacks[0].nx, 8);
  EXPECT_EQ(round[1].solver, "mgpu");
  EXPECT_EQ(jobs_to_json(round), json);  // canonical form is stable

  EXPECT_THROW(jobs_from_json("{\"jobs\":[{\"solver\":\"cell\"}]}"), std::invalid_argument);
  EXPECT_THROW(jobs_from_json("{\"jobs\":[]} trailing"), std::invalid_argument);
  EXPECT_THROW(jobs_from_json("{\"jobs\":[{\"id\":\"x\",\"bogus\":1}]}"),
               std::invalid_argument);
  EXPECT_THROW(terminal_state_from_name("exploded"), std::invalid_argument);
}

TEST(Supervisor, FaultFreeStreamCompletesBitExact) {
  bte::SupervisorCampaign campaign(base_scenario());
  bte::StreamShape shape;
  shape.njobs = 6;
  shape.chaos_fraction = shape.deadline_fraction = 0.0;
  shape.flaky_fraction = shape.poison_fraction = 0.0;
  shape.min_steps = 6;
  shape.max_steps = 8;
  const auto jobs = campaign.mixed_stream(11, shape);
  ASSERT_EQ(jobs.size(), 6u);

  Supervisor sup(base_scenario(), SupervisorOptions{});
  const bte::SupervisorReport report = campaign.run_stream(sup, jobs);
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_EQ(report.completed, 6);
  EXPECT_EQ(report.nonterminal, 0);
  for (const JobOutcome& o : report.outcomes) EXPECT_EQ(o.attempts.size(), 1u);
}

TEST(Supervisor, ChaosScheduleSurvivesWithinOneAttempt) {
  bte::SupervisorCampaign campaign(base_scenario());
  JobSpec spec = small_job("chaotic");
  spec.nparts = 4;
  spec.nsteps = 10;
  rt::ChaosEngine engine(5);
  rt::ChaosSpec cs;
  cs.nparts = spec.nparts;
  cs.nsteps = spec.nsteps;
  spec.faults = engine.generate("cell", cs, 0).faults;
  ASSERT_FALSE(spec.faults.empty());

  Supervisor sup(base_scenario(), SupervisorOptions{});
  const bte::SupervisorReport report = campaign.run_stream(sup, {spec});
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
  const JobOutcome o = only(report.outcomes);
  EXPECT_EQ(o.state, TerminalState::Completed);
  // Survivable-by-design: recovery happens inside the attempt, not by retry.
  EXPECT_EQ(o.attempts.size(), 1u);
  EXPECT_GT(o.attempts[0].injected, 0);
}

TEST(Supervisor, PoisonJobTripsCircuitBreakerWithRepro) {
  const std::string root = fresh_root("poison");
  SupervisorOptions opt;
  opt.durable_root = root;
  Supervisor sup(base_scenario(), opt);
  sup.submit(poison_job("toxic"));
  const JobOutcome o = only(sup.drain());

  EXPECT_EQ(o.state, TerminalState::Quarantined);
  EXPECT_NE(o.detail.find("circuit breaker"), std::string::npos) << o.detail;
  // Breaker trips at `threshold` consecutive failures, each under a distinct
  // derived injector seed.
  ASSERT_EQ(o.attempts.size(), static_cast<size_t>(opt.quarantine.threshold));
  for (size_t i = 0; i < o.attempts.size(); ++i) {
    EXPECT_FALSE(o.attempts[i].error.empty());
    for (size_t j = 0; j < i; ++j)
      EXPECT_NE(o.attempts[i].injector_seed, o.attempts[j].injector_seed);
  }
  // The minimized repro is attached, parseable, and on disk.
  const rt::ChaosSchedule repro = rt::schedule_from_json(o.repro_json);
  EXPECT_FALSE(repro.faults.empty());
  ASSERT_FALSE(o.repro_path.empty());
  EXPECT_EQ(rt::schedule_from_json(read_text_file(o.repro_path)).faults.size(),
            repro.faults.size());
  // Terminal record committed: a restarted supervisor must NOT re-adopt it.
  TerminalState ts{};
  std::string detail;
  terminal_from_json(read_text_file(root + "/toxic/terminal.json"), &ts, &detail);
  EXPECT_EQ(ts, TerminalState::Quarantined);
  Supervisor again(base_scenario(), opt);
  EXPECT_TRUE(again.adopt_orphans().empty());
}

TEST(Supervisor, RetryBudgetExhaustedExactlyAtQuarantineThreshold) {
  // max_retries == threshold - 1: the same attempt exhausts the retry budget
  // AND trips the breaker; the job must get exactly one terminal state.
  const std::string root = fresh_root("budget_edge");
  SupervisorOptions opt;
  opt.durable_root = root;
  opt.quarantine.threshold = 3;
  opt.retry.max_retries = 2;
  Supervisor sup(base_scenario(), opt);
  sup.submit(poison_job("edge"));
  const JobOutcome o = only(sup.drain());
  EXPECT_EQ(o.state, TerminalState::Quarantined);
  EXPECT_EQ(o.attempts.size(), 3u);
  // Precedence: the breaker (quarantine) claims it, and only one terminal
  // record exists on disk.
  EXPECT_NE(o.detail.find("circuit breaker"), std::string::npos) << o.detail;
  TerminalState ts{};
  std::string detail;
  terminal_from_json(read_text_file(root + "/edge/terminal.json"), &ts, &detail);
  EXPECT_EQ(ts, TerminalState::Quarantined);

  // Budget strictly smaller than the threshold: quarantine still the terminal
  // state, but attributed to the exhausted retry budget.
  SupervisorOptions tight = opt;
  tight.durable_root = fresh_root("budget_tight");
  tight.retry.max_retries = 1;
  Supervisor sup2(base_scenario(), tight);
  sup2.submit(poison_job("tight"));
  const JobOutcome o2 = only(sup2.drain());
  EXPECT_EQ(o2.state, TerminalState::Quarantined);
  EXPECT_EQ(o2.attempts.size(), 2u);
  EXPECT_NE(o2.detail.find("retry budget exhausted"), std::string::npos) << o2.detail;
}

TEST(Supervisor, FlakyJobRetryResumesFromManifestNotStepZero) {
  bte::SupervisorCampaign campaign(base_scenario());
  bte::StreamShape shape;
  shape.njobs = 1;
  shape.flaky_fraction = 1.0;
  shape.chaos_fraction = shape.deadline_fraction = shape.poison_fraction = 0.0;
  shape.min_steps = shape.max_steps = 9;
  const auto jobs = campaign.mixed_stream(3, shape);
  ASSERT_EQ(jobs.size(), 1u);
  ASSERT_EQ(jobs[0].faults.size(), 2u);

  SupervisorOptions opt;
  opt.durable_root = fresh_root("flaky");
  Supervisor sup(base_scenario(), opt);
  const bte::SupervisorReport report = campaign.run_stream(sup, jobs);
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
  const JobOutcome o = only(report.outcomes);
  EXPECT_EQ(o.state, TerminalState::Completed);
  ASSERT_EQ(o.attempts.size(), 2u);
  EXPECT_FALSE(o.attempts[0].error.empty());
  // The retry resumed from the durable manifest: provenance says resumed,
  // and it started past step 0 (no step-0 replay).
  EXPECT_TRUE(o.attempts[1].resumed);
  EXPECT_GT(o.attempts[1].start_step, 0);
  EXPECT_EQ(report.resumed_retries, 1);
  EXPECT_EQ(report.step0_replays, 0);
  // Backoff was charged to the virtual clock, deterministically.
  EXPECT_DOUBLE_EQ(o.attempts[1].backoff_s,
                   backoff_with_jitter(opt.retry, o.spec.id, 0));
  EXPECT_GE(o.time_to_terminal_s,
            o.attempts[0].virtual_s + o.attempts[1].virtual_s + o.attempts[1].backoff_s);
}

TEST(Supervisor, DeadlineDrainsToCancelledAndStaysResumable) {
  const std::string root = fresh_root("deadline");
  SupervisorOptions opt;
  opt.durable_root = root;
  Supervisor sup(base_scenario(), opt);
  JobSpec spec = small_job("late");
  spec.nsteps = 10;
  spec.deadline_steps = 4;
  spec.ckpt_interval = 2;
  sup.submit(spec);
  const JobOutcome o = only(sup.drain());
  EXPECT_EQ(o.state, TerminalState::Cancelled);
  EXPECT_NE(o.detail.find("deadline"), std::string::npos) << o.detail;
  EXPECT_GE(o.final_step, 4);
  EXPECT_LT(o.final_step, 10);
  // Drain-then-resume: the durable state on disk is a valid resume point.
  const rt::RunManifest m = rt::read_manifest(root + "/late/manifest.json");
  EXPECT_EQ(m.last_step, o.final_step);
  EXPECT_FALSE(m.cancel_reason.empty());
}

TEST(Supervisor, CancelRequestPreemptsQueuedJob) {
  Supervisor sup(base_scenario(), SupervisorOptions{});
  sup.submit(small_job("first"));
  sup.submit(small_job("second"));
  EXPECT_EQ(sup.queue_depth(), 2u);
  EXPECT_TRUE(sup.request_cancel("second", "operator said no"));
  EXPECT_FALSE(sup.request_cancel("nonexistent"));
  const auto outcomes = sup.drain();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].state, TerminalState::Completed);
  EXPECT_EQ(outcomes[1].state, TerminalState::Cancelled);
  EXPECT_NE(outcomes[1].detail.find("operator said no"), std::string::npos);
  // Cancel beat admission and retry: the job never ran an attempt.
  EXPECT_TRUE(outcomes[1].attempts.empty());
  // Terminal jobs cannot be cancelled again.
  EXPECT_FALSE(sup.request_cancel("second"));
}

TEST(Supervisor, ShedJobNeverTouchesTheMemoryBudget) {
  rt::MemoryBudget budget(8 << 20);  // 8 MB: far too small for any solve
  SupervisorOptions opt;
  opt.memory = &budget;
  Supervisor sup(base_scenario(), opt);
  JobSpec spec = small_job("huge");
  spec.nx = 64;
  spec.ny = 64;
  sup.submit(spec);
  const JobOutcome o = only(sup.drain());
  EXPECT_EQ(o.state, TerminalState::Shed);
  EXPECT_TRUE(o.attempts.empty());
  // The shed path is pure arithmetic: no reservation, no relief chain run,
  // the budget is untouched.
  EXPECT_EQ(budget.in_use(), 0);
}

TEST(Supervisor, FallbackLadderDegradesBeforeShedding) {
  // Budget sized so the top rung cannot fit but the declared fallback can.
  bte::PhysicsCache cache;
  bte::BteScenario big = base_scenario();
  big.nx = 64;
  big.ny = 64;
  big.ndirs = 8;
  big.nbands = 6;
  const auto phys = cache.get(6, 8);
  const auto big_demand = bte::estimate_memory_demand("cell", big, *phys, 3);
  bte::BteScenario small = big;
  small.nx = 12;
  small.ny = 8;
  const auto small_demand = bte::estimate_memory_demand("cell", small, *phys, 3);
  ASSERT_LT(small_demand.total_bytes() * 4, big_demand.total_bytes());

  rt::MemoryBudget budget(small_demand.total_bytes() * 2);
  SupervisorOptions opt;
  opt.memory = &budget;
  Supervisor sup(base_scenario(), opt);
  JobSpec spec = small_job("ladder");
  spec.nx = 64;
  spec.ny = 64;
  JobConfig rung;
  rung.nx = 12;
  rung.ny = 8;
  spec.fallbacks.push_back(rung);
  sup.submit(spec);
  const JobOutcome o = only(sup.drain());
  EXPECT_EQ(o.state, TerminalState::Completed);
  EXPECT_EQ(o.degraded_rung, 0);
  EXPECT_EQ(o.ran.nx, 12);
  EXPECT_EQ(o.ran.ny, 8);
  EXPECT_EQ(budget.in_use(), 0);  // released at terminal

  // Bit-exact vs the fault-free reference of the rung that actually ran.
  bte::SupervisorCampaign campaign(base_scenario());
  const auto report = campaign.judge({spec}, {o}, opt);
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_EQ(report.degraded, 1);
}

TEST(Supervisor, DuplicateAndInvalidSubmissionsRejected) {
  Supervisor sup(base_scenario(), SupervisorOptions{});
  sup.submit(small_job("dup"));
  EXPECT_THROW(sup.submit(small_job("dup")), std::invalid_argument);
  JobSpec no_id = small_job("");
  EXPECT_THROW(sup.submit(no_id), std::invalid_argument);
  JobSpec bad_solver = small_job("bad");
  bad_solver.solver = "quantum";
  EXPECT_THROW(sup.submit(bad_solver), std::invalid_argument);
  JobSpec bad_steps = small_job("steps");
  bad_steps.nsteps = 0;
  EXPECT_THROW(sup.submit(bad_steps), std::invalid_argument);
  JobSpec bad_fallback = small_job("fb");
  JobConfig fb;
  fb.solver = "quantum";
  bad_fallback.fallbacks.push_back(fb);
  EXPECT_THROW(sup.submit(bad_fallback), std::invalid_argument);
  EXPECT_EQ(sup.queue_depth(), 1u);
}

#ifdef FINCH_HAVE_FORK
// Supervisor crash-restart: the child supervisor is SIGKILLed mid-job right
// after a run manifest commits (the PR-7 commit-hook harness, filtered to
// manifest renames). The restarted parent supervisor adopts the orphaned job
// directory — job.json present, terminal.json absent — and drives it to
// Completed bit-exactly, resuming from the committed manifest.
TEST(SupervisorCrash, RestartReadoptsJobWhoseManifestCommittedBeforeDeath) {
  const std::string root = fresh_root("crash");
  JobSpec spec = small_job("orphan");
  spec.nsteps = 10;
  spec.ckpt_interval = 2;
  SupervisorOptions opt;
  opt.durable_root = root;

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: die mid-step once the manifest for step 4 has committed
    // (enable_resilience commits step 0, then steps 2 and 4).
    static int manifest_commits = 0;
    rt::set_checkpoint_commit_hook([](const std::string& path, rt::CommitPhase phase) {
      if (phase != rt::CommitPhase::AfterRename) return;
      if (path.find("manifest.json") == std::string::npos) return;
      if (++manifest_commits == 3) ::raise(SIGKILL);
    });
    Supervisor victim(base_scenario(), opt);
    victim.submit(spec);
    victim.drain();
    ::_exit(42);  // unreachable when the kill landed
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with " << WEXITSTATUS(status);
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The job is an orphan: spec committed, no terminal record, manifest at
  // step 4.
  EXPECT_TRUE(file_exists(root + "/orphan/job.json"));
  EXPECT_FALSE(file_exists(root + "/orphan/terminal.json"));
  EXPECT_EQ(rt::read_manifest(root + "/orphan/manifest.json").last_step, 4);

  Supervisor restarted(base_scenario(), opt);
  const auto adopted = restarted.adopt_orphans();
  ASSERT_EQ(adopted.size(), 1u);
  EXPECT_EQ(adopted[0], "orphan");
  const JobOutcome o = only(restarted.drain());
  EXPECT_EQ(o.state, TerminalState::Completed);
  EXPECT_TRUE(o.adopted);
  ASSERT_EQ(o.attempts.size(), 1u);
  EXPECT_TRUE(o.attempts[0].resumed);
  EXPECT_EQ(o.attempts[0].start_step, 4);

  // The oracle holds across the crash: bit-exact vs fault-free reference.
  bte::SupervisorCampaign campaign(base_scenario());
  const auto report = campaign.judge({spec}, {o}, opt);
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_EQ(report.adopted, 1);
}
#endif  // FINCH_HAVE_FORK
