// Mesh construction and connectivity invariants (2D and 3D structured grids).
#include <gtest/gtest.h>

#include <map>

#include "mesh/mesh.hpp"

using finch::mesh::Face;
using finch::mesh::Mesh;
using finch::mesh::Vec3;

TEST(MeshQuad, CountsAndGeometry) {
  Mesh m = Mesh::structured_quad(4, 3, 4.0, 3.0);
  EXPECT_EQ(m.dimension(), 2);
  EXPECT_EQ(m.num_cells(), 12);
  // faces: vertical (nx+1)*ny + horizontal nx*(ny+1)
  EXPECT_EQ(m.num_faces(), 5 * 3 + 4 * 4);
  for (int32_t c = 0; c < m.num_cells(); ++c) {
    EXPECT_DOUBLE_EQ(m.cell_volume(c), 1.0);
    EXPECT_EQ(m.cell_faces(c).size(), 4);
  }
}

TEST(MeshQuad, EveryCellHasFourFacesWithUnitNormals) {
  Mesh m = Mesh::structured_quad(5, 5, 1.0, 1.0);
  for (int32_t c = 0; c < m.num_cells(); ++c) {
    Vec3 sum{};
    for (int32_t f : m.cell_faces(c)) {
      Vec3 n = m.outward_normal(f, c);
      EXPECT_NEAR(n.norm(), 1.0, 1e-14);
      sum += n * m.face(f).area;
    }
    // Closed surface: sum of outward area vectors vanishes.
    EXPECT_NEAR(sum.norm(), 0.0, 1e-12);
  }
}

TEST(MeshQuad, BoundaryRegionTags) {
  Mesh m = Mesh::structured_quad(3, 2, 3.0, 2.0);
  std::map<int, int> region_count;
  for (int32_t f = 0; f < m.num_faces(); ++f) {
    const Face& fc = m.face(f);
    if (fc.is_boundary()) ++region_count[fc.boundary_region];
  }
  EXPECT_EQ(region_count[1], 3);  // ymin: nx faces
  EXPECT_EQ(region_count[2], 3);  // ymax
  EXPECT_EQ(region_count[3], 2);  // xmin: ny faces
  EXPECT_EQ(region_count[4], 2);  // xmax
  EXPECT_EQ(m.region_name(1), "ymin");
  EXPECT_EQ(m.region_name(2), "ymax");
}

TEST(MeshQuad, InteriorFaceOwnersAndNeighborsConsistent) {
  Mesh m = Mesh::structured_quad(4, 4, 1.0, 1.0);
  for (int32_t f = 0; f < m.num_faces(); ++f) {
    const Face& fc = m.face(f);
    if (fc.is_boundary()) {
      EXPECT_EQ(fc.boundary_region > 0, true);
      continue;
    }
    EXPECT_EQ(m.across(f, fc.owner), fc.neighbor);
    EXPECT_EQ(m.across(f, fc.neighbor), fc.owner);
    // Normal points from owner to neighbor.
    Vec3 d = m.cell_centroid(fc.neighbor) - m.cell_centroid(fc.owner);
    EXPECT_GT(d.dot(fc.normal), 0.0);
  }
}

TEST(MeshQuad, BoundaryCells) {
  Mesh m = Mesh::structured_quad(4, 4, 1.0, 1.0);
  auto bc = m.boundary_cells();
  EXPECT_EQ(bc.size(), 12u);  // 16 cells, 4 interior
}

TEST(MeshQuad, CellGraphDegrees) {
  Mesh m = Mesh::structured_quad(3, 3, 1.0, 1.0);
  auto g = m.cell_graph();
  // corner cells: 2 neighbors, edge: 3, center: 4
  int deg_sum = 0;
  for (int32_t c = 0; c < m.num_cells(); ++c) deg_sum += g.offset[static_cast<size_t>(c) + 1] - g.offset[static_cast<size_t>(c)];
  EXPECT_EQ(deg_sum, 2 * 12);  // 12 interior faces, each contributes 2
  EXPECT_EQ(g.offset[5] - g.offset[4], 4);  // center cell id 4
}

TEST(MeshHex, CountsAndClosure) {
  Mesh m = Mesh::structured_hex(3, 2, 2, 3.0, 2.0, 2.0);
  EXPECT_EQ(m.dimension(), 3);
  EXPECT_EQ(m.num_cells(), 12);
  for (int32_t c = 0; c < m.num_cells(); ++c) {
    EXPECT_EQ(m.cell_faces(c).size(), 6);
    EXPECT_DOUBLE_EQ(m.cell_volume(c), 1.0);
    Vec3 sum{};
    for (int32_t f : m.cell_faces(c)) sum += m.outward_normal(f, c) * m.face(f).area;
    EXPECT_NEAR(sum.norm(), 0.0, 1e-12);
  }
}

TEST(MeshHex, RegionTagsCoverSixSides) {
  Mesh m = Mesh::structured_hex(2, 2, 2, 1.0, 1.0, 1.0);
  std::map<int, int> regions;
  for (int32_t f = 0; f < m.num_faces(); ++f)
    if (m.face(f).is_boundary()) ++regions[m.face(f).boundary_region];
  EXPECT_EQ(regions.size(), 6u);
  for (const auto& [r, n] : regions) {
    EXPECT_GE(r, 1);
    EXPECT_LE(r, 6);
    EXPECT_EQ(n, 4);
  }
}

TEST(MeshErrors, RejectsBadArguments) {
  EXPECT_THROW(Mesh::structured_quad(0, 3, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Mesh::structured_quad(3, 3, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Mesh::structured_hex(1, 1, 0, 1, 1, 1), std::invalid_argument);
}

// Paper-scale sanity: the 120x120 hot-spot mesh of §III.A.
TEST(MeshQuad, PaperHotSpotMesh) {
  Mesh m = Mesh::structured_quad(120, 120, 525e-6, 525e-6);
  EXPECT_EQ(m.num_cells(), 14400);
  const double h = 525e-6 / 120;
  EXPECT_NEAR(m.cell_volume(0), h * h, 1e-18);
}
