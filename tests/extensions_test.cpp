// Tests for the DSL/mesh extensions: 1-D meshes through the full pipeline,
// VTK export, and space-time (per-step re-materialized) coefficients.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/dsl/problem.hpp"
#include "mesh/mesh.hpp"
#include "mesh/vtk_io.hpp"

using namespace finch;

// ---- 1-D meshes -----------------------------------------------------------

TEST(Mesh1D, ConnectivityAndGeometry) {
  mesh::Mesh m = mesh::Mesh::structured_line(10, 2.0);
  EXPECT_EQ(m.dimension(), 1);
  EXPECT_EQ(m.num_cells(), 10);
  EXPECT_EQ(m.num_faces(), 11);
  for (int32_t c = 0; c < 10; ++c) {
    EXPECT_DOUBLE_EQ(m.cell_volume(c), 0.2);
    EXPECT_EQ(m.cell_faces(c).size(), 2);
  }
  int boundary = 0;
  for (int32_t f = 0; f < m.num_faces(); ++f)
    if (m.face(f).is_boundary()) ++boundary;
  EXPECT_EQ(boundary, 2);
  EXPECT_EQ(m.region_name(1), "xmin");
  EXPECT_EQ(m.region_name(2), "xmax");
}

TEST(Mesh1D, AdvectionThroughTheDslPipeline) {
  // 1-D transport at speed 1 with inflow 1: the front fills the domain.
  const int n = 25;
  dsl::Problem p("adv1d");
  p.set_mesh(mesh::Mesh::structured_line(n, 1.0));
  p.set_steps(0.5 / n, 1);
  p.variable("u");
  p.coefficient("bx", 1.0);
  p.conservation_form("u", "-surface(upwind([bx], u))");
  p.initial("u", [](int32_t, std::span<const int32_t>) { return 0.0; });
  p.boundary("u", 1, dsl::BcType::Value, "inflow", [](const fvm::BoundaryContext&) { return 1.0; });
  // Outflow: the upwinded flux bx * u(cell) leaves through the x-max end.
  p.boundary("u", 2, dsl::BcType::Flux, "outflow",
             [](const fvm::BoundaryContext& ctx) { return ctx.fields->get("u").at(ctx.cell, 0); });
  auto solver = p.compile(dsl::Target::CpuSerial);
  solver->run(3 * n);  // t = 1.5: front has crossed the whole domain
  for (int32_t c = 0; c < n; ++c) EXPECT_NEAR(p.fields().get("u").at(c, 0), 1.0, 0.05) << c;
}

TEST(Mesh1D, DiffusionFreeUpwindIsMonotone1D) {
  const int n = 30;
  dsl::Problem p("mono1d");
  p.set_mesh(mesh::Mesh::structured_line(n, 1.0));
  p.set_steps(0.4 / n, 1);
  p.variable("u");
  p.coefficient("bx", 1.0);
  p.conservation_form("u", "-surface(upwind([bx], u))");
  p.initial("u", [n](int32_t c, std::span<const int32_t>) { return c < n / 3 ? 1.0 : 0.0; });
  p.boundary("u", 1, dsl::BcType::Value, "inflow", [](const fvm::BoundaryContext&) { return 1.0; });
  auto solver = p.compile(dsl::Target::CpuSerial);
  solver->run(10);
  const auto& u = p.fields().get("u");
  for (int32_t c = 0; c + 1 < n; ++c) EXPECT_GE(u.at(c, 0) + 1e-12, u.at(c + 1, 0));
}

// ---- VTK export --------------------------------------------------------------

TEST(VtkIo, StructuredGridHeaderAndValues) {
  mesh::Mesh m = mesh::Mesh::structured_quad(3, 2, 3.0, 2.0);
  std::vector<double> vals = {1, 2, 3, 4, 5, 6};
  std::stringstream ss;
  mesh::write_vtk_cells(ss, m, 3, 2, 1, "temperature", vals);
  const std::string text = ss.str();
  EXPECT_NE(text.find("# vtk DataFile Version 3.0"), std::string::npos);
  EXPECT_NE(text.find("DATASET STRUCTURED_GRID"), std::string::npos);
  EXPECT_NE(text.find("DIMENSIONS 4 3 1"), std::string::npos);
  EXPECT_NE(text.find("POINTS 12 double"), std::string::npos);
  EXPECT_NE(text.find("CELL_DATA 6"), std::string::npos);
  EXPECT_NE(text.find("SCALARS temperature double 1"), std::string::npos);
}

TEST(VtkIo, Rejects3dMismatch) {
  mesh::Mesh m = mesh::Mesh::structured_quad(3, 2, 1.0, 1.0);
  std::vector<double> vals(5, 0.0);  // wrong count
  std::stringstream ss;
  EXPECT_THROW(mesh::write_vtk_cells(ss, m, 3, 2, 1, "x", vals), std::invalid_argument);
}

TEST(VtkIo, HexGrid) {
  mesh::Mesh m = mesh::Mesh::structured_hex(2, 2, 2, 1.0, 1.0, 1.0);
  std::vector<double> vals(8, 1.5);
  std::stringstream ss;
  mesh::write_vtk_cells(ss, m, 2, 2, 2, "T", vals);
  EXPECT_NE(ss.str().find("DIMENSIONS 3 3 3"), std::string::npos);
  EXPECT_NE(ss.str().find("CELL_DATA 8"), std::string::npos);
}

// ---- space-time coefficients ---------------------------------------------------

TEST(SpacetimeCoefficient, RefreshedEveryStep) {
  // du/dt = -k(t) u with k(t) = 2 for t < T/2 then 0: the decay stops halfway.
  dsl::Problem p("kt");
  p.set_mesh(mesh::Mesh::structured_quad(2, 2, 1.0, 1.0));
  const double dt = 0.01;
  p.set_steps(dt, 1);
  p.variable("u");
  p.coefficient_spacetime("k", [dt](mesh::Vec3, double t) { return t < 10 * dt - 1e-12 ? 2.0 : 0.0; });
  p.conservation_form("u", "-k*u");
  p.initial("u", [](int32_t, std::span<const int32_t>) { return 1.0; });
  auto solver = p.compile(dsl::Target::CpuSerial);
  solver->run(10);
  const double after_decay = p.fields().get("u").at(0, 0);
  EXPECT_NEAR(after_decay, std::pow(1.0 - 2.0 * dt, 10), 1e-12);
  solver->run(10);  // k switched off: value frozen
  EXPECT_DOUBLE_EQ(p.fields().get("u").at(0, 0), after_decay);
}

TEST(SpacetimeCoefficient, SpatialProfileApplies) {
  // k = 4 on the left half, 0 on the right: only the left half decays.
  dsl::Problem p("kx");
  p.set_mesh(mesh::Mesh::structured_quad(4, 1, 1.0, 0.25));
  p.set_steps(0.01, 1);
  p.variable("u");
  p.coefficient_spacetime("k", [](mesh::Vec3 x, double) { return x.x < 0.5 ? 4.0 : 0.0; });
  p.conservation_form("u", "-k*u");
  p.initial("u", [](int32_t, std::span<const int32_t>) { return 1.0; });
  auto solver = p.compile(dsl::Target::CpuSerial);
  solver->run(5);
  const auto& u = p.fields().get("u");
  EXPECT_LT(u.at(0, 0), 0.9);
  EXPECT_LT(u.at(1, 0), 0.9);
  EXPECT_DOUBLE_EQ(u.at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(u.at(3, 0), 1.0);
}
