// Golden tests for the source-text targets: the generated C++ (nested loops,
// assembly order, comment nodes) and CUDA (flattened one-thread-per-DOF
// kernel + the §II.B host driver) renderings of the IR.
#include <gtest/gtest.h>

#include "core/dsl/problem.hpp"
#include "mesh/mesh.hpp"

using namespace finch;

namespace {

dsl::Problem bte_like_problem() {
  dsl::Problem p("srcgen");
  p.set_mesh(mesh::Mesh::structured_quad(4, 4, 1.0, 1.0));
  p.set_steps(1e-12, 1);
  p.index("d", 1, 4);
  p.index("b", 1, 3);
  p.variable("I", {"d", "b"});
  p.variable("Io", {"b"});
  p.variable("beta", {"b"});
  p.coefficient("Sx", {1, -1, 0.5, -0.5}, {"d"});
  p.coefficient("Sy", {0.5, 0.5, -1, 1}, {"d"});
  p.coefficient("vg", {1, 2, 3}, {"b"});
  p.conservation_form("I", "(Io[b]-I[d,b])*beta[b] - surface(vg[b]*upwind([Sx[d];Sy[d]], I[d,b]))");
  p.initial("I", [](int32_t, std::span<const int32_t>) { return 1.0; });
  p.boundary("I", 1, dsl::BcType::Flux, "isothermal_cold", [](const fvm::BoundaryContext&) { return 0.0; });
  p.boundary("I", 3, dsl::BcType::Flux, "symmetry", [](const fvm::BoundaryContext&) { return 0.0; });
  return p;
}

}  // namespace

TEST(CppEmitter, NestedLoopsFollowAssemblyOrder) {
  auto p = bte_like_problem();
  std::string src = p.generated_cpp_source();
  // Default order: cells outermost, then declared indices.
  const size_t cells_pos = src.find("for (int cell = 0; cell < Ncells; ++cell)");
  const size_t d_pos = src.find("for (int d = 0; d < 4; ++d)");
  const size_t b_pos = src.find("for (int b = 0; b < 3; ++b)");
  ASSERT_NE(cells_pos, std::string::npos);
  ASSERT_NE(d_pos, std::string::npos);
  ASSERT_NE(b_pos, std::string::npos);
  EXPECT_LT(cells_pos, d_pos);
  EXPECT_LT(d_pos, b_pos);
}

TEST(CppEmitter, PermutedLoopOrderIsHonored) {
  auto p = bte_like_problem();
  p.assembly_loops({"b", "cells", "d"});
  std::string src = p.generated_cpp_source();
  const size_t b_pos = src.find("for (int b = 0");
  const size_t cells_pos = src.find("for (int cell = 0");
  const size_t d_pos = src.find("for (int d = 0");
  EXPECT_LT(b_pos, cells_pos);
  EXPECT_LT(cells_pos, d_pos);
}

TEST(CppEmitter, CommentNodesAppearInOutput) {
  auto p = bte_like_problem();
  std::string src = p.generated_cpp_source();
  EXPECT_NE(src.find("// update of I via explicit FV step"), std::string::npos);
  EXPECT_NE(src.find("// RHS volume integrand"), std::string::npos);
  EXPECT_NE(src.find("// RHS surface integrand"), std::string::npos);
  EXPECT_NE(src.find("// combine: u_new = rhs_volume"), std::string::npos);
}

TEST(CppEmitter, ExpressionsRenderAsIndexedArrays) {
  auto p = bte_like_problem();
  std::string src = p.generated_cpp_source();
  EXPECT_NE(src.find("Io[cell*dof_per_cell + b]"), std::string::npos);
  EXPECT_NE(src.find("I[cell*dof_per_cell + d + Nd*b]"), std::string::npos);
  // Upwind conditional survives as a ternary against the face normal.
  EXPECT_NE(src.find("normal_x"), std::string::npos);
  EXPECT_NE(src.find("?"), std::string::npos);
  EXPECT_NE(src.find("neighbor"), std::string::npos);
}

TEST(CudaEmitter, FlattenedThreadIndexing) {
  auto p = bte_like_problem();
  std::string src = p.generated_cuda_source();
  EXPECT_NE(src.find("__global__ void step_I_interior"), std::string::npos);
  EXPECT_NE(src.find("blockIdx.x * blockDim.x + threadIdx.x"), std::string::npos);
  EXPECT_NE(src.find("if (tid >= s.n_interior_dofs) return;"), std::string::npos);
  // Index recovery from the flattened thread id.
  EXPECT_NE(src.find("const int d = dof % Nd;"), std::string::npos);
  EXPECT_NE(src.find("const int b = (dof / Nd) % Nb;"), std::string::npos);
}

TEST(CudaEmitter, HostDriverFollowsFig6) {
  auto p = bte_like_problem();
  std::string src = p.generated_cuda_source();
  // The §II.B host-step structure, in order.
  const size_t launch = src.find("step_I_interior<<<grid, block, 0, stream>>>");
  const size_t boundary = src.find("compute_boundary_region");
  const size_t sync = src.find("cudaStreamSynchronize(stream)");
  const size_t combine = src.find("combine_interior_and_boundary");
  const size_t post = src.find("run_post_step_callbacks");
  const size_t upload = src.find("upload_step_variables");
  ASSERT_NE(launch, std::string::npos);
  ASSERT_NE(boundary, std::string::npos);
  ASSERT_NE(sync, std::string::npos);
  ASSERT_NE(combine, std::string::npos);
  ASSERT_NE(post, std::string::npos);
  ASSERT_NE(upload, std::string::npos);
  EXPECT_LT(launch, boundary);
  EXPECT_LT(boundary, sync);
  EXPECT_LT(sync, combine);
  EXPECT_LT(combine, post);
  EXPECT_LT(post, upload);
}

TEST(CudaEmitter, RegisteredCallbacksAreNamed) {
  auto p = bte_like_problem();
  std::string src = p.generated_cuda_source();
  EXPECT_NE(src.find("callback_isothermal_cold"), std::string::npos);
  EXPECT_NE(src.find("callback_symmetry"), std::string::npos);
}

TEST(IrPseudocode, ShowsLoopsTermsAndComments) {
  auto p = bte_like_problem();
  std::string ir = p.ir_pseudocode();
  EXPECT_NE(ir.find("# update of I via explicit FV step"), std::string::npos);
  EXPECT_NE(ir.find("for cell = 1:Ncells"), std::string::npos);
  EXPECT_NE(ir.find("for d = 1:4"), std::string::npos);
  EXPECT_NE(ir.find("for b = 1:3"), std::string::npos);
  EXPECT_NE(ir.find("source ="), std::string::npos);
  EXPECT_NE(ir.find("flux += "), std::string::npos);
  EXPECT_NE(ir.find("I_new = source + flux"), std::string::npos);
}

TEST(IrPseudocode, VolumeOnlyEquationHasNoFluxLoop) {
  dsl::Problem p("noflux");
  p.set_mesh(mesh::Mesh::structured_quad(2, 2, 1.0, 1.0));
  p.variable("u");
  p.coefficient("k", 1.0);
  p.conservation_form("u", "-k*u");
  p.initial("u", [](int32_t, std::span<const int32_t>) { return 1.0; });
  std::string ir = p.ir_pseudocode();
  EXPECT_EQ(ir.find("flux"), std::string::npos);
  EXPECT_NE(ir.find("u_new = source"), std::string::npos);
}
