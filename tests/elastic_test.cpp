// Elastic shrink-to-survivors tests: permanent-fault taxonomy, heartbeat
// detection charged in virtual time, exactly-once ownership after every
// repartition, N-to-M (and cross-solver) checkpoint restarts, and the
// end-to-end invariant that a run surviving rank/device loss still lands on
// the fault-free DirectSolver answer bit-for-bit.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>

#include "bte/direct_solver.hpp"
#include "bte/multi_gpu_solver.hpp"
#include "bte/partitioned_solver.hpp"
#include "bte/resilience.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/fault.hpp"
#include "runtime/simmpi.hpp"

using namespace finch;
using namespace finch::bte;

namespace {

std::shared_ptr<const BtePhysics> phys() {
  static auto p = std::make_shared<const BtePhysics>(6, 8);
  return p;
}

BteScenario scen() {
  BteScenario s;
  s.nx = 10;
  s.ny = 8;
  s.lx = s.ly = 50e-6;
  s.hot_w = 20e-6;
  s.ndirs = 8;
  s.nbands = 6;
  s.dt = 1e-12;
  return s;
}

void expect_bitwise_equal(std::span<const double> a, std::span<const double> b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "index " << i;
}

void expect_all_ones(const std::vector<int32_t>& counts) {
  for (size_t i = 0; i < counts.size(); ++i)
    EXPECT_EQ(counts[i], 1) << "item " << i << " owned " << counts[i] << " times";
}

}  // namespace

// ---- permanent-fault taxonomy --------------------------------------------

TEST(PermanentFaults, TaxonomyAndNames) {
  EXPECT_STREQ(rt::fault_kind_name(rt::FaultKind::RankFailure), "rank-failure");
  EXPECT_STREQ(rt::fault_kind_name(rt::FaultKind::DeviceLoss), "device-loss");
  EXPECT_TRUE(rt::fault_is_permanent(rt::FaultKind::RankFailure));
  EXPECT_TRUE(rt::fault_is_permanent(rt::FaultKind::DeviceLoss));
  EXPECT_FALSE(rt::fault_is_permanent(rt::FaultKind::KernelLaunchFailure));
  EXPECT_FALSE(rt::fault_is_permanent(rt::FaultKind::TransferCorruption));
  EXPECT_FALSE(rt::fault_is_permanent(rt::FaultKind::DroppedMessage));
  EXPECT_FALSE(rt::fault_is_permanent(rt::FaultKind::StuckRank));
}

TEST(PermanentFaults, VictimPickIsDeterministicInSeed) {
  rt::FaultInjector a(11), b(11), c(12);
  const size_t va = a.pick(rt::FaultKind::RankFailure, "cell-rank", 8);
  const size_t vb = b.pick(rt::FaultKind::RankFailure, "cell-rank", 8);
  EXPECT_EQ(va, vb);
  EXPECT_LT(va, 8u);
  // The draw is keyed on the event counter, so consuming consultations moves
  // the choice for the same seed; a different seed is free to differ too.
  rt::FaultPolicy p;
  p.every = 1;
  a.set_policy(rt::FaultKind::RankFailure, p);
  for (int i = 0; i < 3; ++i) a.should_fault(rt::FaultKind::RankFailure, "cell-rank");
  EXPECT_LT(a.pick(rt::FaultKind::RankFailure, "cell-rank", 8), 8u);
  EXPECT_LT(c.pick(rt::FaultKind::RankFailure, "cell-rank", 8), 8u);
  EXPECT_EQ(a.pick(rt::FaultKind::RankFailure, "x", 1), 0u);
}

TEST(PermanentFaults, HeartbeatTimeoutIsPeriodTimesThreshold) {
  rt::HeartbeatModel hb;
  hb.period_s = 2e-4;
  hb.miss_threshold = 5;
  EXPECT_DOUBLE_EQ(hb.suspicion_timeout(), 1e-3);
}

// ---- BSP simulator eviction accounting -----------------------------------

TEST(BspSimulator, EvictChargesSuspicionTimeoutAndShrinks) {
  rt::BspSimulator sim(4);
  rt::HeartbeatModel hb;
  hb.period_s = 1e-4;
  hb.miss_threshold = 3;
  sim.set_heartbeat(hb);
  const double t0 = sim.elapsed();
  sim.evict_rank(2);
  EXPECT_EQ(sim.nranks(), 3);
  EXPECT_EQ(sim.evictions(), 1);
  EXPECT_DOUBLE_EQ(sim.elapsed() - t0, 3e-4);
  EXPECT_DOUBLE_EQ(sim.phases().recovery, 3e-4);
  // Redistribution is priced like a superstep: per-rank latency + bytes/BW.
  const double before = sim.elapsed();
  sim.charge_redistribution(1000);
  EXPECT_GT(sim.elapsed(), before);
  EXPECT_GT(sim.phases().redistribution, 0.0);
  EXPECT_DOUBLE_EQ(sim.phases().total(),
                   sim.phases().compute + sim.phases().post_process +
                       sim.phases().communication + sim.phases().recovery +
                       sim.phases().redistribution);
}

TEST(BspSimulator, EvictGuardsAgainstInvalidAndLastRank) {
  rt::BspSimulator sim(2);
  EXPECT_THROW(sim.evict_rank(-1), std::invalid_argument);
  EXPECT_THROW(sim.evict_rank(2), std::invalid_argument);
  sim.evict_rank(1);
  EXPECT_EQ(sim.nranks(), 1);
  EXPECT_THROW(sim.evict_rank(0), std::invalid_argument);  // no survivors left
}

// ---- ownership property after repartition --------------------------------

TEST(ElasticProperty, EveryCellOwnedExactlyOnceThroughEvictions) {
  BteScenario s = scen();
  CellPartitionedSolver part(s, phys(), 5);
  part.enable_resilience(ResilienceOptions{});
  expect_all_ones(part.owner_counts());
  for (int survivors = 5; survivors > 1; --survivors) {
    part.kill_rank(survivors - 1);
    part.run(1);
    EXPECT_EQ(part.nparts(), survivors - 1);
    expect_all_ones(part.owner_counts());
  }
}

TEST(ElasticProperty, EveryBandOwnedExactlyOnceThroughEvictions) {
  BteScenario s = scen();
  BandPartitionedSolver part(s, phys(), 4);
  part.enable_resilience(ResilienceOptions{});
  expect_all_ones(part.owner_counts());
  for (int survivors = 4; survivors > 1; --survivors) {
    part.kill_rank(0);  // killing rank 0 forces every survivor's range to move
    part.run(1);
    EXPECT_EQ(part.nparts(), survivors - 1);
    expect_all_ones(part.owner_counts());
  }
}

TEST(ElasticProperty, EveryBandShardOwnedExactlyOnceAcrossDevices) {
  BteScenario s = scen();
  MultiGpuSolver multi(s, phys(), 3);
  multi.enable_resilience(ResilienceOptions{});
  expect_all_ones(multi.owner_counts());
  multi.kill_device(1);
  multi.run(1);
  EXPECT_EQ(multi.num_devices(), 2);
  expect_all_ones(multi.owner_counts());
}

// ---- N-to-M restart -------------------------------------------------------

TEST(ElasticRestart, SnapshotAtNRanksRestoresBitExactAtMRanks) {
  BteScenario s = scen();
  DirectSolver serial(s, phys());
  serial.run(10);

  CellPartitionedSolver at_n(s, phys(), 4);
  at_n.run(6);
  const rt::Snapshot snap = at_n.snapshot();

  for (int m : {1, 2, 3, 5}) {
    CellPartitionedSolver at_m(s, phys(), m);
    at_m.restore(snap);
    EXPECT_EQ(at_m.step_index(), at_n.step_index());
    expect_bitwise_equal(at_n.gather_intensity(), at_m.gather_intensity());
    at_m.run(4);
    expect_bitwise_equal(serial.intensity(), at_m.gather_intensity());
    expect_bitwise_equal(serial.temperature(), at_m.gather_temperature());
  }
}

TEST(ElasticRestart, SnapshotsAreInterchangeableAcrossSolverFamilies) {
  BteScenario s = scen();
  DirectSolver serial(s, phys());
  serial.run(10);

  // Band-partitioned at 3 ranks -> cell-partitioned at 2 -> multi-GPU at 2:
  // the canonical global layout makes every hop a bit-exact restart.
  BandPartitionedSolver band(s, phys(), 3);
  band.run(4);

  CellPartitionedSolver cell(s, phys(), 2);
  cell.restore(band.snapshot());
  cell.run(3);

  MultiGpuSolver multi(s, phys(), 2);
  multi.restore(cell.snapshot());
  multi.run(3);

  expect_bitwise_equal(serial.intensity(), multi.gather_intensity());
  expect_bitwise_equal(serial.temperature(), multi.temperature());
}

TEST(ElasticRestart, MismatchedSnapshotIsRejected) {
  BteScenario small = scen();
  BteScenario big = scen();
  big.nx = 14;
  CellPartitionedSolver a(small, phys(), 2);
  CellPartitionedSolver b(big, phys(), 2);
  EXPECT_THROW(b.restore(a.snapshot()), rt::CheckpointError);
}

// ---- end-to-end eviction convergence -------------------------------------

TEST(ElasticRecovery, CellSolverSurvivesEachRankInTurn) {
  BteScenario s = scen();
  DirectSolver serial(s, phys());
  serial.run(12);

  for (int32_t victim = 0; victim < 4; ++victim) {
    CellPartitionedSolver part(s, phys(), 4);
    ResilienceOptions opt;
    opt.checkpoint.interval = 4;
    part.enable_resilience(opt);
    part.run(6);
    part.kill_rank(victim);
    part.run(6);
    EXPECT_EQ(part.nparts(), 3) << "victim " << victim;
    const auto& rs = part.resilience_stats();
    EXPECT_EQ(rs.evictions, 1);
    EXPECT_GT(rs.recovery_seconds, 0.0);
    EXPECT_GT(rs.redistribution_seconds, 0.0);
    EXPECT_GT(rs.replayed_steps, 0);  // steps since the last checkpoint redone
    expect_bitwise_equal(serial.intensity(), part.gather_intensity());
    expect_bitwise_equal(serial.temperature(), part.gather_temperature());
  }
}

TEST(ElasticRecovery, BandSolverSurvivesEachRankInTurn) {
  BteScenario s = scen();
  DirectSolver serial(s, phys());
  serial.run(12);

  for (int32_t victim = 0; victim < 3; ++victim) {
    BandPartitionedSolver part(s, phys(), 3);
    ResilienceOptions opt;
    opt.checkpoint.interval = 4;
    part.enable_resilience(opt);
    part.run(6);
    part.kill_rank(victim);
    part.run(6);
    EXPECT_EQ(part.nparts(), 2) << "victim " << victim;
    EXPECT_EQ(part.resilience_stats().evictions, 1);
    expect_bitwise_equal(serial.intensity(), part.gather_intensity());
    expect_bitwise_equal(serial.temperature(), part.temperature());
  }
}

TEST(ElasticRecovery, MultiGpuSurvivesDeviceLossWithRedistributionBilled) {
  BteScenario s = scen();
  DirectSolver serial(s, phys());
  serial.run(12);

  MultiGpuSolver multi(s, phys(), 3);
  ResilienceOptions opt;
  opt.checkpoint.interval = 4;
  multi.enable_resilience(opt);
  multi.run(6);
  multi.kill_device(0);
  multi.run(6);
  EXPECT_EQ(multi.num_devices(), 2);
  EXPECT_EQ(multi.resilience_stats().evictions, 1);
  EXPECT_GT(multi.phases().recovery, 0.0);         // suspicion timeout
  EXPECT_GT(multi.phases().redistribution, 0.0);   // measured H2D re-upload
  EXPECT_GT(multi.resilience_stats().redistribution_seconds, 0.0);
  expect_bitwise_equal(serial.intensity(), multi.gather_intensity());
  expect_bitwise_equal(serial.temperature(), multi.temperature());
}

TEST(ElasticRecovery, InjectedRankFailuresPickVictimsDeterministically) {
  BteScenario s = scen();
  DirectSolver serial(s, phys());
  serial.run(12);

  auto run_once = [&](uint64_t seed) {
    rt::FaultInjector inj(seed);
    rt::FaultPolicy p;
    p.every = 5;  // consults happen once per step boundary
    p.first_event = 4;
    p.max_injections = 2;
    inj.set_policy(rt::FaultKind::RankFailure, p);
    CellPartitionedSolver part(s, phys(), 4);
    ResilienceOptions opt;
    opt.injector = &inj;
    opt.checkpoint.interval = 3;
    part.enable_resilience(opt);
    part.run(12);
    EXPECT_EQ(part.resilience_stats().evictions, 2);
    EXPECT_EQ(part.nparts(), 2);
    expect_bitwise_equal(serial.intensity(), part.gather_intensity());
    expect_bitwise_equal(serial.temperature(), part.gather_temperature());
    // Compute phases are *measured* (non-deterministic wall time); the
    // recovery/redistribution bill is fully modeled, so it is the
    // reproducibility witness for the victim sequence.
    return part.phases().recovery + part.phases().redistribution;
  };
  EXPECT_DOUBLE_EQ(run_once(31), run_once(31));
}

TEST(ElasticRecovery, InjectedDeviceLossOnMultiGpu) {
  BteScenario s = scen();
  DirectSolver serial(s, phys());
  serial.run(10);

  rt::FaultInjector inj(7);
  rt::FaultPolicy p;
  p.every = 100;  // fire exactly once, early
  p.first_event = 3;
  p.max_injections = 1;
  inj.set_policy(rt::FaultKind::DeviceLoss, p);

  MultiGpuSolver multi(s, phys(), 2);
  ResilienceOptions opt;
  opt.injector = &inj;
  opt.checkpoint.interval = 2;
  multi.enable_resilience(opt);
  multi.run(10);
  EXPECT_EQ(multi.num_devices(), 1);
  EXPECT_EQ(multi.resilience_stats().evictions, 1);
  expect_bitwise_equal(serial.intensity(), multi.gather_intensity());
  expect_bitwise_equal(serial.temperature(), multi.temperature());
}

TEST(ElasticRecovery, EvictionWithNoSurvivorsThrows) {
  BteScenario s = scen();
  BandPartitionedSolver part(s, phys(), 2);
  part.enable_resilience(ResilienceOptions{});
  part.kill_rank(0);
  part.run(2);
  EXPECT_EQ(part.nparts(), 1);
  part.kill_rank(0);
  EXPECT_THROW(part.run(2), ResilienceError);
}

TEST(ElasticRecovery, KillRequiresResilienceAndValidVictim) {
  BteScenario s = scen();
  CellPartitionedSolver part(s, phys(), 3);
  EXPECT_THROW(part.kill_rank(0), std::logic_error);
  part.enable_resilience(ResilienceOptions{});
  EXPECT_THROW(part.kill_rank(-1), std::invalid_argument);
  EXPECT_THROW(part.kill_rank(3), std::invalid_argument);
  MultiGpuSolver multi(s, phys(), 2);
  EXPECT_THROW(multi.kill_device(0), std::logic_error);
  multi.enable_resilience(ResilienceOptions{});
  EXPECT_THROW(multi.kill_device(2), std::invalid_argument);
}
