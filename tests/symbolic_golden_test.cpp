// Golden tests reproducing the DSL pipeline's intermediate symbolic strings
// exactly as §II.A of the paper prints them for the advection–reaction
// example  conservationForm(u, "-k*u - surface(upwind(b, u))"):
//
//   expanded:   -TIMEDERIVATIVE*_u_1 - _k_1*_u_1 - SURFACE*conditional(
//                  _b_1*NORMAL_1+_b_2*NORMAL_2 > 0,
//                  (_b_1*NORMAL_1+_b_2*NORMAL_2)*CELL1_u_1,
//                  (_b_1*NORMAL_1+_b_2*NORMAL_2)*CELL2_u_1)
//   fwd Euler:  _u_1 = _u_1 - dt*_k_1*_u_1 - dt*SURFACE*conditional(...)
//   LHS volume:  -_u_1
//   RHS volume:  _u_1 - dt*_k_1*_u_1
//   RHS surface: -dt*conditional(...)
//
// (Whitespace canonicalized to this library's printer conventions.)
#include <gtest/gtest.h>

#include "core/symbolic/parser.hpp"
#include "core/symbolic/printer.hpp"
#include "core/symbolic/simplify.hpp"
#include "core/symbolic/transform.hpp"

namespace sym = finch::sym;

namespace {

const char* kCond =
    "conditional(_b_1*NORMAL_1 + _b_2*NORMAL_2 > 0, "
    "(_b_1*NORMAL_1 + _b_2*NORMAL_2)*CELL1_u_1, "
    "(_b_1*NORMAL_1 + _b_2*NORMAL_2)*CELL2_u_1)";

struct Pipeline {
  sym::EntityTable table;
  sym::OperatorRegistry registry;
  sym::Equation eq;

  Pipeline() {
    table.declare({"u", sym::EntityKind::Variable, 1, {}});
    table.declare({"k", sym::EntityKind::Coefficient, 1, {}});
    table.declare({"b", sym::EntityKind::Coefficient, 2, {}});
    const sym::EntityInfo& u = *table.find("u");
    eq = sym::make_conservation_form(u, "-k*u - surface(upwind(b, u))", table, registry, 2);
  }
};

}  // namespace

TEST(Golden, ExpandedSymbolicForm) {
  Pipeline p;
  EXPECT_EQ(sym::to_string(p.eq.full),
            std::string("-TIMEDERIVATIVE*_u_1 - _k_1*_u_1 - SURFACE*") + kCond);
}

TEST(Golden, ForwardEulerForm) {
  Pipeline p;
  auto stepped = sym::apply_forward_euler(p.eq);
  EXPECT_EQ(sym::to_string(stepped.unknown), "_u_1");
  EXPECT_EQ(sym::to_string(stepped.rhs),
            std::string("_u_1 - dt*_k_1*_u_1 - dt*SURFACE*") + kCond);
}

TEST(Golden, TermClassification) {
  Pipeline p;
  auto cls = sym::classify(sym::apply_forward_euler(p.eq));
  EXPECT_EQ(sym::category_string(cls.lhs_volume), "-_u_1");
  EXPECT_EQ(sym::category_string(cls.rhs_volume), "_u_1 - dt*_k_1*_u_1");
  EXPECT_EQ(sym::category_string(cls.rhs_surface), std::string("-dt*") + kCond);
}

TEST(Golden, BteEquationPipeline) {
  // The paper's §III.B BTE input (sign convention: this library treats the
  // input literally as du/dt = expr, so the advective flux enters with '-').
  sym::EntityTable t;
  t.declare_index("d", 1, 20);
  t.declare_index("b", 1, 55);
  t.declare({"I", sym::EntityKind::Variable, 1, {"d", "b"}});
  t.declare({"Io", sym::EntityKind::Variable, 1, {"b"}});
  t.declare({"beta", sym::EntityKind::Variable, 1, {"b"}});
  t.declare({"Sx", sym::EntityKind::Coefficient, 1, {"d"}});
  t.declare({"Sy", sym::EntityKind::Coefficient, 1, {"d"}});
  t.declare({"vg", sym::EntityKind::Coefficient, 1, {"b"}});
  sym::OperatorRegistry reg;

  auto eq = sym::make_conservation_form(
      *t.find("I"), "(Io[b] - I[d,b]) * beta[b] - surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))", t,
      reg, 2);

  const std::string cond =
      "conditional(_Sx_1[d]*NORMAL_1 + _Sy_1[d]*NORMAL_2 > 0, "
      "(_Sx_1[d]*NORMAL_1 + _Sy_1[d]*NORMAL_2)*CELL1_I_1[d,b], "
      "(_Sx_1[d]*NORMAL_1 + _Sy_1[d]*NORMAL_2)*CELL2_I_1[d,b])";

  EXPECT_EQ(sym::to_string(eq.full), "-TIMEDERIVATIVE*_I_1[d,b] + _Io_1[b]*_beta_1[b] - "
                                     "_I_1[d,b]*_beta_1[b] - SURFACE*_vg_1[b]*" + cond);

  auto cls = sym::classify(sym::apply_forward_euler(eq));
  EXPECT_EQ(sym::category_string(cls.lhs_volume), "-_I_1[d,b]");
  EXPECT_EQ(sym::category_string(cls.rhs_volume),
            "_I_1[d,b] + dt*_Io_1[b]*_beta_1[b] - dt*_I_1[d,b]*_beta_1[b]");
  EXPECT_EQ(sym::category_string(cls.rhs_surface), "-dt*_vg_1[b]*" + cond);
}

TEST(Golden, CustomOperatorRegistration) {
  // The paper: "a more sophisticated flux reconstruction could be created and
  // used in the input expression similar to upwind". Register one and use it.
  sym::EntityTable t;
  t.declare({"u", sym::EntityKind::Variable, 1, {}});
  t.declare({"b", sym::EntityKind::Coefficient, 2, {}});
  sym::OperatorRegistry reg;
  reg.register_op("halfflux", [](std::span<const sym::Expr> args, const sym::ExpandContext& ctx) {
    auto v = sym::vector_components(args[0], *ctx.table);
    auto n = sym::normal_vector(ctx.dimension);
    sym::Expr vdotn = sym::add({sym::mul({v[0], n[0]}), sym::mul({v[1], n[1]})});
    return sym::mul({sym::num(0.5), vdotn, sym::with_cell_side(args[1], sym::CellSide::Cell1)});
  });
  auto eq = sym::make_conservation_form(*t.find("u"), "-surface(halfflux(b, u))", t, reg, 2);
  // Outside of conditional(...) arguments, expansion distributes products over
  // sums, so the custom flux arrives as one flat term per component.
  EXPECT_EQ(sym::to_string(eq.full),
            "-TIMEDERIVATIVE*_u_1 - 0.5*SURFACE*_b_1*NORMAL_1*CELL1_u_1"
            " - 0.5*SURFACE*_b_2*NORMAL_2*CELL1_u_1");
}

TEST(Golden, CentralFluxOperator) {
  sym::EntityTable t;
  t.declare({"u", sym::EntityKind::Variable, 1, {}});
  t.declare({"b", sym::EntityKind::Coefficient, 2, {}});
  sym::OperatorRegistry reg;
  auto eq = sym::make_conservation_form(*t.find("u"), "-surface(central(b, u))", t, reg, 2);
  EXPECT_EQ(sym::to_string(eq.full),
            "-TIMEDERIVATIVE*_u_1 - 0.5*SURFACE*_b_1*NORMAL_1*CELL1_u_1"
            " - 0.5*SURFACE*_b_1*NORMAL_1*CELL2_u_1 - 0.5*SURFACE*_b_2*NORMAL_2*CELL1_u_1"
            " - 0.5*SURFACE*_b_2*NORMAL_2*CELL2_u_1");
}
