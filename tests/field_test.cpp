// CellField layouts and FieldSet behaviour.
#include <gtest/gtest.h>

#include "fvm/field.hpp"

using namespace finch::fvm;

class LayoutTest : public ::testing::TestWithParam<Layout> {};

TEST_P(LayoutTest, RoundTripAccess) {
  CellField f("I", 10, 6, GetParam());
  for (int32_t c = 0; c < 10; ++c)
    for (int32_t d = 0; d < 6; ++d) f.at(c, d) = c * 100.0 + d;
  for (int32_t c = 0; c < 10; ++c)
    for (int32_t d = 0; d < 6; ++d) EXPECT_DOUBLE_EQ(f.at(c, d), c * 100.0 + d);
}

TEST_P(LayoutTest, FlatIndexBijective) {
  CellField f("x", 7, 5, GetParam());
  std::vector<char> seen(35, 0);
  for (int32_t c = 0; c < 7; ++c)
    for (int32_t d = 0; d < 5; ++d) {
      size_t i = f.flat_index(c, d);
      ASSERT_LT(i, seen.size());
      EXPECT_EQ(seen[i], 0);
      seen[i] = 1;
    }
}

INSTANTIATE_TEST_SUITE_P(BothLayouts, LayoutTest, ::testing::Values(Layout::CellMajor, Layout::DofMajor),
                         [](const auto& info) {
                           return info.param == Layout::CellMajor ? "CellMajor" : "DofMajor";
                         });

TEST(CellField, CellMajorContiguityPerCell) {
  CellField f("I", 4, 3, Layout::CellMajor);
  EXPECT_EQ(f.flat_index(2, 0) + 1, f.flat_index(2, 1));
  EXPECT_EQ(f.flat_index(0, 2) + 1, f.flat_index(1, 0));
}

TEST(CellField, DofMajorContiguityPerDof) {
  CellField f("I", 4, 3, Layout::DofMajor);
  EXPECT_EQ(f.flat_index(0, 1) + 1, f.flat_index(1, 1));
  EXPECT_EQ(f.flat_index(3, 0) + 1, f.flat_index(0, 1));
}

TEST(CellField, ConvertLayoutPreservesValues) {
  CellField f("I", 6, 4, Layout::CellMajor);
  for (int32_t c = 0; c < 6; ++c)
    for (int32_t d = 0; d < 4; ++d) f.at(c, d) = 10.0 * c + d;
  f.convert_layout(Layout::DofMajor);
  EXPECT_EQ(f.layout(), Layout::DofMajor);
  for (int32_t c = 0; c < 6; ++c)
    for (int32_t d = 0; d < 4; ++d) EXPECT_DOUBLE_EQ(f.at(c, d), 10.0 * c + d);
  f.convert_layout(Layout::CellMajor);
  for (int32_t c = 0; c < 6; ++c)
    for (int32_t d = 0; d < 4; ++d) EXPECT_DOUBLE_EQ(f.at(c, d), 10.0 * c + d);
}

TEST(CellField, FillAndInit) {
  CellField f("x", 3, 2, Layout::CellMajor, 7.5);
  EXPECT_DOUBLE_EQ(f.at(2, 1), 7.5);
  f.fill(-1.0);
  EXPECT_DOUBLE_EQ(f.at(0, 0), -1.0);
}

TEST(FieldSet, AddGetHas) {
  FieldSet fs;
  fs.add("I", 5, 3);
  EXPECT_TRUE(fs.has("I"));
  EXPECT_FALSE(fs.has("J"));
  EXPECT_EQ(fs.get("I").dof_per_cell(), 3);
  EXPECT_THROW(fs.get("J"), std::out_of_range);
  EXPECT_THROW(fs.add("I", 5, 3), std::invalid_argument);
}
