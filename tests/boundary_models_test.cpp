// Boundary-model builders: isothermal / specular / diffuse walls, including
// the classic ballistic size effect — in-plane effective conductivity drops
// below bulk when boundaries scatter diffusely.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bte/boundary_models.hpp"
#include "bte/direct_solver.hpp"

using namespace finch;
using namespace finch::bte;

namespace {

std::shared_ptr<const BtePhysics> phys() {
  static auto p = std::make_shared<const BtePhysics>(6, 8);
  return p;
}

BteScenario scen() {
  BteScenario s;
  s.nx = s.ny = 8;
  s.lx = s.ly = 40e-6;
  s.hot_w = 15e-6;
  s.ndirs = 8;
  s.nbands = 6;
  s.dt = 1e-12;
  return s;
}

// Swaps the built-in symmetry side walls of a BteProblem for custom callbacks.
BteProblem make_problem_with_sides(const BteScenario& s, fvm::BoundaryCallback side) {
  BteProblem bp(s, phys());
  bp.problem().boundary("I", 3, dsl::BcType::Flux, "custom_side", side);
  bp.problem().boundary("I", 4, dsl::BcType::Flux, "custom_side", side);
  return bp;
}

}  // namespace

TEST(BoundaryModels, SpecularBuilderMatchesBuiltIn) {
  // Replacing the built-in symmetry walls with make_specular_wall must give
  // identical results.
  BteScenario s = scen();
  BteProblem a(s, phys());
  a.compile(dsl::Target::CpuSerial)->run(10);
  BteProblem b = make_problem_with_sides(s, make_specular_wall(phys()));
  b.compile(dsl::Target::CpuSerial)->run(10);
  auto A = a.problem().fields().get("I").data();
  auto B = b.problem().fields().get("I").data();
  for (size_t i = 0; i < A.size(); ++i) ASSERT_EQ(A[i], B[i]);
}

TEST(BoundaryModels, FullySpecularDiffuseWallEqualsSpecular) {
  BteScenario s = scen();
  BteProblem a = make_problem_with_sides(s, make_specular_wall(phys()));
  a.compile(dsl::Target::CpuSerial)->run(8);
  BteProblem b = make_problem_with_sides(s, make_diffuse_wall(phys(), 1.0));
  b.compile(dsl::Target::CpuSerial)->run(8);
  auto A = a.problem().fields().get("I").data();
  auto B = b.problem().fields().get("I").data();
  for (size_t i = 0; i < A.size(); ++i) ASSERT_EQ(A[i], B[i]);
}

TEST(BoundaryModels, DiffuseWallPreservesEquilibrium) {
  // At global equilibrium the diffuse re-emission equals the equilibrium
  // intensity, so nothing changes.
  BteScenario s = scen();
  s.T_hot = s.T_cold;
  BteProblem bp = make_problem_with_sides(s, make_diffuse_wall(phys(), 0.0));
  bp.compile(dsl::Target::CpuSerial)->run(12);
  for (double T : bp.temperature()) EXPECT_NEAR(T, s.T_init, 0.05);
}

TEST(BoundaryModels, DiffuseSidewallsDampTheTransientVsSpecular) {
  // With the hot spot on, fully diffuse side walls randomize directions and
  // the field differs from the specular case — but stays bounded and
  // physical. (The classic boundary-scattering size effect in miniature.)
  BteScenario s = scen();
  s.nsteps = 40;
  BteProblem spec = make_problem_with_sides(s, make_specular_wall(phys()));
  spec.compile(dsl::Target::CpuSerial)->run(40);
  BteProblem diff = make_problem_with_sides(s, make_diffuse_wall(phys(), 0.0));
  diff.compile(dsl::Target::CpuSerial)->run(40);
  auto Ts = spec.temperature();
  auto Td = diff.temperature();
  double max_diff = 0;
  for (size_t i = 0; i < Ts.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(Ts[i] - Td[i]));
    EXPECT_GE(Td[i], s.T_cold - 0.5);
    EXPECT_LE(Td[i], s.T_hot + 0.5);
  }
  EXPECT_GT(max_diff, 1e-9);  // the wall model matters
}

TEST(BoundaryModels, RejectsBadSpecularity) {
  EXPECT_THROW(make_diffuse_wall(phys(), -0.1), std::invalid_argument);
  EXPECT_THROW(make_diffuse_wall(phys(), 1.5), std::invalid_argument);
}

TEST(BoundaryModels, IsothermalBuilderMatchesBuiltInColdWall) {
  // Region 1 (cold wall) built-in vs builder: identical fields.
  BteScenario s = scen();
  BteProblem a(s, phys());
  a.compile(dsl::Target::CpuSerial)->run(6);
  BteProblem b(s, phys());
  b.problem().boundary("I", 1, dsl::BcType::Flux, "iso_builder",
                       make_isothermal_wall(phys(), s.T_cold));
  b.compile(dsl::Target::CpuSerial)->run(6);
  auto A = a.problem().fields().get("I").data();
  auto B = b.problem().fields().get("I").data();
  for (size_t i = 0; i < A.size(); ++i) ASSERT_EQ(A[i], B[i]);
}
