// Chaos campaign engine: composed multi-class fault schedules, the recovery
// oracle, delta-debugged minimal repros, and the cross-fault hardening of the
// checkpoint-restore path.
//
// The schedules here compose fault classes the per-class suites exercise in
// isolation (resilience_test: transient; elastic_test: permanent; sdc_test:
// silent; straggler_test: performance) — the cross-class interactions are the
// point: a bit flip striking the image read of an eviction restore, a hang
// inside a rollback, corruption after the last checkpoint of a shrunk fleet.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "bte/chaos_campaign.hpp"
#include "bte/partitioned_solver.hpp"
#include "bte/resilience.hpp"
#include "runtime/chaos.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/fault.hpp"
#include "runtime/metrics.hpp"

using namespace finch;
using namespace finch::bte;

namespace {

BteScenario tiny_scenario() {
  BteScenario s;
  s.nx = 12;
  s.ny = 10;
  s.lx = s.ly = 50e-6;
  s.hot_w = 20e-6;
  s.ndirs = 8;
  s.nbands = 6;
  s.dt = 1e-12;
  return s;
}

std::shared_ptr<const BtePhysics> tiny_physics() {
  const BteScenario s = tiny_scenario();
  return std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

}  // namespace

// ---- schedule model + JSON artifact -----------------------------------------

TEST(ChaosSchedule, GeneratedSchedulesRoundTripThroughJson) {
  const rt::ChaosEngine engine(1234);
  for (const char* solver : {"cell", "band", "mgpu"}) {
    for (int64_t index = 0; index < 8; ++index) {
      const rt::ChaosSchedule s = engine.generate(solver, rt::ChaosSpec{}, index);
      const rt::ChaosSchedule r = rt::schedule_from_json(rt::schedule_to_json(s));
      EXPECT_EQ(r.seed, s.seed);
      EXPECT_EQ(r.index, s.index);
      EXPECT_EQ(r.solver, s.solver);
      EXPECT_EQ(r.nparts, s.nparts);
      EXPECT_EQ(r.nsteps, s.nsteps);
      ASSERT_EQ(r.faults.size(), s.faults.size());
      for (size_t i = 0; i < s.faults.size(); ++i) {
        EXPECT_EQ(r.faults[i].kind, s.faults[i].kind);
        EXPECT_EQ(r.faults[i].site, s.faults[i].site);
        EXPECT_EQ(r.faults[i].first_event, s.faults[i].first_event);
        EXPECT_EQ(r.faults[i].stride, s.faults[i].stride);
        EXPECT_EQ(r.faults[i].count, s.faults[i].count);
      }
    }
  }
}

TEST(ChaosSchedule, GenerationIsDeterministicAndMixesClasses) {
  const rt::ChaosEngine engine(777);
  rt::ChaosSpec spec;
  for (const char* solver : {"cell", "band", "mgpu"}) {
    for (int64_t index = 0; index < 16; ++index) {
      const rt::ChaosSchedule a = engine.generate(solver, spec, index);
      const rt::ChaosSchedule b = engine.generate(solver, spec, index);
      EXPECT_EQ(rt::schedule_to_json(a), rt::schedule_to_json(b));
      EXPECT_GE(a.num_classes(), spec.min_classes) << solver << "[" << index << "]";
      EXPECT_GE(static_cast<int>(a.faults.size()), spec.min_faults);
      // Survivor budget: never more evictions than the fleet can absorb.
      int64_t permanent_fires = 0;
      for (const rt::ChaosFault& f : a.faults)
        if (rt::fault_is_permanent(f.kind)) permanent_fires += f.count;
      EXPECT_LE(permanent_fires, spec.nparts - 2);
    }
  }
}

TEST(ChaosSchedule, MalformedJsonIsRejectedLoudly) {
  const rt::ChaosEngine engine(1);
  const std::string good = rt::schedule_to_json(engine.generate("cell", rt::ChaosSpec{}, 0));
  EXPECT_THROW(rt::schedule_from_json(good.substr(0, good.size() / 2)), std::invalid_argument);
  EXPECT_THROW(rt::schedule_from_json("{\"seed\": 1, \"bogus\": 2}"), std::invalid_argument);
  EXPECT_THROW(rt::schedule_from_json("{\"solver\": \"tpu\"}"), std::invalid_argument);
  // Omitted keys fall back to the (valid) schedule defaults — "{}" is the
  // empty-but-well-formed artifact, not an error.
  EXPECT_EQ(rt::schedule_from_json("{}").solver, "cell");
  EXPECT_THROW(rt::schedule_from_json(
                   "{\"solver\": \"cell\", \"nparts\": 0, \"nsteps\": 4, \"faults\": []}"),
               std::invalid_argument);
  EXPECT_THROW(
      rt::schedule_from_json("{\"solver\": \"cell\", \"nparts\": 4, \"nsteps\": 4, \"faults\": "
                             "[{\"kind\": \"not-a-fault\", \"site\": \"x\"}]}"),
      std::invalid_argument);
  EXPECT_THROW(
      rt::schedule_from_json("{\"solver\": \"cell\", \"nparts\": 4, \"nsteps\": 4, \"faults\": "
                             "[{\"kind\": \"slow-rank\", \"site\": \"x\", \"first\": -3}]}"),
      std::invalid_argument);
  EXPECT_THROW(rt::schedule_from_json(good + "trailing"), std::invalid_argument);
}

TEST(ChaosSchedule, FaultKindNamesRoundTrip) {
  for (int k = 0; k < rt::kNumFaultKinds; ++k) {
    const auto kind = static_cast<rt::FaultKind>(k);
    EXPECT_EQ(rt::fault_kind_from_name(rt::fault_kind_name(kind)), kind);
  }
  EXPECT_THROW(rt::fault_kind_from_name("quantum-decoherence"), std::invalid_argument);
}

TEST(ChaosSchedule, SiteMenuCoversAllFourClassesPerSolver) {
  for (const char* solver : {"cell", "band", "mgpu"}) {
    bool transient = false, permanent = false, silent = false, perf = false;
    for (const rt::ChaosMenuEntry& e : rt::ChaosEngine::site_menu(solver)) {
      if (rt::fault_is_permanent(e.kind))
        permanent = true;
      else if (rt::fault_is_silent(e.kind))
        silent = true;
      else if (rt::fault_is_performance(e.kind))
        perf = true;
      else
        transient = true;
    }
    EXPECT_TRUE(transient && permanent && silent && perf) << solver;
  }
  EXPECT_THROW(rt::ChaosEngine::site_menu("tpu"), std::invalid_argument);
}

// ---- multi-class arming on the injector -------------------------------------

TEST(ScheduledFaults, FireExactlyAtArmedIndicesAcrossClasses) {
  rt::FaultInjector inj(9);
  // Four classes armed concurrently on one injector — the composition the
  // one-policy-per-(kind, site) interface cannot express.
  inj.schedule_fault(rt::FaultKind::DroppedMessage, "wire", 2);
  inj.schedule_fault(rt::FaultKind::DroppedMessage, "wire", 5);
  inj.schedule_fault(rt::FaultKind::BitFlipMessage, "wire", 3);
  inj.schedule_fault(rt::FaultKind::RankFailure, "node", 1);
  inj.schedule_fault(rt::FaultKind::SlowRank, "cpu", 0);
  EXPECT_EQ(inj.scheduled_pending(), 5);

  std::vector<int> dropped_fires, flip_fires;
  for (int i = 0; i < 8; ++i) {
    if (inj.should_fault(rt::FaultKind::DroppedMessage, "wire")) dropped_fires.push_back(i);
    if (inj.should_fault(rt::FaultKind::BitFlipMessage, "wire")) flip_fires.push_back(i);
  }
  EXPECT_EQ(dropped_fires, (std::vector<int>{2, 5}));
  EXPECT_EQ(flip_fires, (std::vector<int>{3}));
  EXPECT_FALSE(inj.should_fault(rt::FaultKind::RankFailure, "node"));  // index 0
  EXPECT_TRUE(inj.should_fault(rt::FaultKind::RankFailure, "node"));   // index 1
  EXPECT_TRUE(inj.should_fault(rt::FaultKind::SlowRank, "cpu"));       // index 0
  EXPECT_EQ(inj.scheduled_pending(), 0);

  // Scheduled fires land in the same accounting stream as policy fires.
  EXPECT_EQ(inj.stats().total_injected(), 5);
  EXPECT_EQ(inj.events().size(), 5u);

  EXPECT_THROW(inj.schedule_fault(rt::FaultKind::SlowRank, "cpu", -1), std::invalid_argument);
}

TEST(ScheduledFaults, ScheduleSurvivesResetCountersLikeAPolicy) {
  rt::FaultInjector inj(9);
  inj.schedule_fault(rt::FaultKind::StuckRank, "site", 1);
  EXPECT_FALSE(inj.should_fault(rt::FaultKind::StuckRank, "site"));
  EXPECT_TRUE(inj.should_fault(rt::FaultKind::StuckRank, "site"));
  inj.reset_counters();
  EXPECT_EQ(inj.scheduled_pending(), 1);  // armed schedule is configuration
  EXPECT_FALSE(inj.should_fault(rt::FaultKind::StuckRank, "site"));
  EXPECT_TRUE(inj.should_fault(rt::FaultKind::StuckRank, "site"));
}

TEST(ScheduledFaults, FlipRawBitFlipsExactlyOneBitDeterministically) {
  std::vector<std::byte> image(256);
  for (size_t i = 0; i < image.size(); ++i) image[i] = static_cast<std::byte>(i);
  std::vector<std::byte> copy = image;

  rt::FaultInjector a(42), b(42);
  const size_t ia = a.flip_raw_bit(image, rt::FaultKind::BitFlipMessage, "ckpt-restore");
  const size_t ib = b.flip_raw_bit(copy, rt::FaultKind::BitFlipMessage, "ckpt-restore");
  EXPECT_EQ(ia, ib);
  int bits_changed = 0;
  for (size_t i = 0; i < image.size(); ++i) {
    const auto diff = std::to_integer<unsigned>(image[i]) ^ std::to_integer<unsigned>(copy[i]);
    EXPECT_EQ(diff, 0u);
    unsigned orig = static_cast<unsigned>(i) & 0xffu;
    unsigned now = std::to_integer<unsigned>(image[i]);
    unsigned x = orig ^ now;
    while (x != 0) {
      bits_changed += static_cast<int>(x & 1u);
      x >>= 1;
    }
  }
  EXPECT_EQ(bits_changed, 1);

  std::vector<std::byte> empty;
  EXPECT_EQ(a.flip_raw_bit(empty, rt::FaultKind::BitFlipMessage, "x"), 0u);  // no write
}

// ---- checkpoint generations -------------------------------------------------

TEST(CheckpointGenerations, SaveRotatesThePreviousImage) {
  rt::CheckpointStore store;
  EXPECT_EQ(store.generations(), 0);
  EXPECT_THROW(store.image_copy(0), rt::CheckpointError);

  rt::Snapshot s1;
  s1.step = 4;
  std::vector<double> f = {1.0, 2.0, 3.0};
  s1.add("f", f);
  store.save(s1);
  EXPECT_EQ(store.generations(), 1);

  rt::Snapshot s2 = s1;
  s2.step = 8;
  s2.fields[0].second[0] = 9.0;
  store.save(s2);
  EXPECT_EQ(store.generations(), 2);
  EXPECT_EQ(store.load(0).step, 8);
  EXPECT_EQ(store.load(1).step, 4);
  EXPECT_EQ(store.load(1).field("f")[0], 1.0);
  EXPECT_THROW(store.load(2), rt::CheckpointError);
}

// ---- hardened restore: faults *inside* recovery -----------------------------

namespace {

// A cell solver armed with the full defense and one scheduled mid-run
// corruption that forces a rollback at a known point; `mutate` arms the
// additional restore-path faults under test.
template <typename Mutate>
CellPartitionedSolver run_cell_with_forced_rollback(rt::FaultInjector& inj, Mutate mutate,
                                                    int nsteps = 14) {
  // One corrupted halo payload shortly after the second checkpoint (interval
  // 4 -> checkpoints at steps 4, 8, ...; ~6 halo messages per step put step
  // 9's exchange around consultation index 50). The NaN lands in a ghost
  // region, per-step validation catches it, and the step rolls back to the
  // step-8 checkpoint — where `mutate`'s restore-path faults lie in wait.
  inj.schedule_fault(rt::FaultKind::TransferCorruption, "halo", 50);
  mutate(inj);
  const BteScenario s = tiny_scenario();
  CellPartitionedSolver part(s, tiny_physics(), 4);
  ResilienceOptions opt;
  opt.injector = &inj;
  opt.checkpoint.interval = 4;
  opt.sdc.enabled = true;
  part.enable_resilience(opt);
  part.run(nsteps);
  return part;
}

std::vector<double> fault_free_cell_reference(int nsteps = 14) {
  const BteScenario s = tiny_scenario();
  CellPartitionedSolver part(s, tiny_physics(), 4);
  ResilienceOptions opt;
  opt.checkpoint.interval = 4;
  opt.sdc.enabled = true;
  part.enable_resilience(opt);
  part.run(nsteps);
  return part.gather_temperature();
}

}  // namespace

TEST(GuardedRestore, RetriesThroughABitFlippedImageRead) {
  rt::FaultInjector inj(31);
  CellPartitionedSolver part = run_cell_with_forced_rollback(inj, [](rt::FaultInjector& i) {
    // First read of the rollback's image arrives flipped; the re-read is clean.
    i.schedule_fault(rt::FaultKind::BitFlipMessage, "ckpt-restore", 0);
  });
  EXPECT_GE(part.resilience_stats().rollbacks, 1);
  EXPECT_GE(part.resilience_stats().ckpt_restore_retries, 1);
  EXPECT_EQ(part.resilience_stats().ckpt_generation_fallbacks, 0);
  EXPECT_TRUE(bitwise_equal(part.gather_temperature(), fault_free_cell_reference()));
}

TEST(GuardedRestore, FallsBackAGenerationWhenEveryReadOfTheNewestImageIsCorrupt) {
  rt::FaultInjector inj(31);
  CellPartitionedSolver part = run_cell_with_forced_rollback(inj, [](rt::FaultInjector& i) {
    // All max_retries + 1 = 5 reads of generation 0 arrive flipped; the first
    // read of generation 1 (index 5) is clean.
    for (int k = 0; k < 5; ++k) i.schedule_fault(rt::FaultKind::BitFlipMessage, "ckpt-restore", k);
  });
  EXPECT_GE(part.resilience_stats().ckpt_restore_retries, 5);
  EXPECT_EQ(part.resilience_stats().ckpt_generation_fallbacks, 1);
  // The fallback restores the *older* checkpoint (step 4, not 8), so the
  // replay is longer — and the answer still lands bit-exact.
  EXPECT_GE(part.resilience_stats().replayed_steps, 5);
  EXPECT_TRUE(bitwise_equal(part.gather_temperature(), fault_free_cell_reference()));
}

TEST(GuardedRestore, RidesOutAHangInsideTheRestore) {
  rt::FaultInjector clean_inj(31);
  CellPartitionedSolver clean =
      run_cell_with_forced_rollback(clean_inj, [](rt::FaultInjector&) {});
  rt::FaultInjector inj(31);
  CellPartitionedSolver part = run_cell_with_forced_rollback(inj, [](rt::FaultInjector& i) {
    i.schedule_fault(rt::FaultKind::HangExchange, "ckpt-restore", 0);
  });
  EXPECT_EQ(part.resilience_stats().ckpt_hang_stalls, 1);
  // The stall is charged to recovery on the virtual clock, and bounded.
  EXPECT_GT(part.resilience_stats().recovery_seconds,
            clean.resilience_stats().recovery_seconds);
  EXPECT_TRUE(bitwise_equal(part.gather_temperature(), fault_free_cell_reference()));
}

TEST(GuardedRestore, ExhaustingEveryGenerationSurfacesResilienceError) {
  rt::FaultInjector inj(31);
  // Corrupt every read of both generations: 2 generations x (max_retries + 1)
  // attempts; schedule far more flips than that so no read ever survives.
  for (int k = 0; k < 16; ++k)
    inj.schedule_fault(rt::FaultKind::BitFlipMessage, "ckpt-restore", k);
  EXPECT_THROW(run_cell_with_forced_rollback(inj, [](rt::FaultInjector&) {}), ResilienceError);
}

TEST(GuardedRestore, EvictionRestoreSurvivesACorruptedImageRead) {
  // Cross-class pin: a permanent fault's eviction restore takes a silent
  // strike on its image read — SDC during redistribution.
  const BteScenario s = tiny_scenario();
  rt::FaultInjector inj(77);
  inj.schedule_fault(rt::FaultKind::RankFailure, "cell-rank", 6);
  inj.schedule_fault(rt::FaultKind::BitFlipMessage, "ckpt-restore", 0);
  CellPartitionedSolver part(s, tiny_physics(), 4);
  ResilienceOptions opt;
  opt.injector = &inj;
  opt.checkpoint.interval = 4;
  part.enable_resilience(opt);
  part.run(14);
  EXPECT_EQ(part.resilience_stats().evictions, 1);
  EXPECT_GE(part.resilience_stats().ckpt_restore_retries, 1);

  CellPartitionedSolver ref(s, tiny_physics(), 4);
  ResilienceOptions ropt;
  ropt.checkpoint.interval = 4;
  ref.enable_resilience(ropt);
  ref.run(14);
  EXPECT_TRUE(bitwise_equal(part.gather_temperature(), ref.gather_temperature()));
}

// ---- campaigns + recovery oracle --------------------------------------------

TEST(ChaosCampaign, ComposedSchedulesSurviveOnAllThreeSolvers) {
  const BteScenario s = tiny_scenario();
  ChaosCampaign campaign(s, tiny_physics());
  const rt::ChaosEngine engine(2026);
  rt::ChaosSpec spec;
  spec.nsteps = 12;
  for (const char* solver : {"cell", "band", "mgpu"}) {
    const auto outcomes = campaign.run_campaign(engine, solver, spec, 5);
    ASSERT_EQ(outcomes.size(), 5u);
    for (const ChaosOutcome& o : outcomes) {
      EXPECT_TRUE(o.ok()) << solver << "[" << o.schedule.index << "]: " << o.detail;
      EXPECT_GE(o.schedule.num_classes(), 3);
      EXPECT_GT(o.injected, 0) << solver << "[" << o.schedule.index << "]";
    }
  }
}

// Satellite: the PR-4 phase-sum conservation sweep, extended from single-class
// fault seeds to composed multi-class schedules — every virtual second any
// recovery path charges must land in exactly one phase bin.
TEST(ChaosCampaign, PhaseLedgerConservedUnderComposedSchedulesPropertySweep) {
  const BteScenario s = tiny_scenario();
  ChaosCampaign campaign(s, tiny_physics());
  rt::ChaosSpec spec;
  spec.nsteps = 12;
  for (const uint64_t seed : {11u, 22u, 33u}) {
    const rt::ChaosEngine engine(seed);
    for (const char* solver : {"cell", "band", "mgpu"}) {
      for (int64_t index = 0; index < 2; ++index) {
        const ChaosOutcome o = campaign.run_schedule(engine.generate(solver, spec, index));
        EXPECT_TRUE(o.survived) << solver << " seed " << seed << ": " << o.detail;
        EXPECT_TRUE(o.phases_conserved) << solver << " seed " << seed << ": " << o.detail;
        EXPECT_TRUE(o.bit_exact) << solver << " seed " << seed << ": " << o.detail;
        EXPECT_TRUE(o.injection_accounted) << solver << " seed " << seed;
      }
    }
  }
}

TEST(ChaosCampaign, ReplayIsDeterministic) {
  const BteScenario s = tiny_scenario();
  ChaosCampaign campaign(s, tiny_physics());
  const rt::ChaosEngine engine(5);
  rt::ChaosSpec spec;
  spec.nsteps = 12;
  const rt::ChaosSchedule sched = engine.generate("band", spec, 3);
  const ChaosOutcome a = campaign.run_schedule(sched);
  const ChaosOutcome b = campaign.run_schedule(sched);
  EXPECT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.rollbacks, b.stats.rollbacks);
  EXPECT_EQ(a.stats.evictions, b.stats.evictions);
  EXPECT_EQ(a.stats.replayed_steps, b.stats.replayed_steps);
}

TEST(ChaosCampaign, ChaosMetricsArePublished) {
  auto& mx = rt::MetricsRegistry::global();
  const double schedules_before = mx.value("chaos.schedules");
  const BteScenario s = tiny_scenario();
  ChaosCampaign campaign(s, tiny_physics());
  const rt::ChaosEngine engine(8);
  rt::ChaosSpec spec;
  spec.nsteps = 12;
  campaign.run_campaign(engine, "cell", spec, 2);
  EXPECT_EQ(mx.value("chaos.schedules"), schedules_before + 2);
  EXPECT_EQ(mx.gauge("chaos.survival_rate").value(), 1.0);
}

// ---- shrinker ---------------------------------------------------------------

TEST(ChaosShrinker, ProducesAMinimalReplayableRepro) {
  const BteScenario s = tiny_scenario();
  ChaosDefense fragile;  // no rollback budget: detected corruption is fatal
  fragile.max_rollbacks = 0;
  fragile.sdc = false;
  fragile.straggler = false;
  ChaosCampaign brittle(s, tiny_physics(), fragile);

  rt::ChaosSchedule dense;
  dense.seed = 606;
  dense.index = 0;
  dense.solver = "cell";
  dense.nparts = 4;
  dense.nsteps = 12;
  dense.faults = {
      {rt::FaultKind::DroppedMessage, "halo", 1, 2, 3},
      {rt::FaultKind::SlowRank, "compute", 4, 1, 2},
      {rt::FaultKind::JitterKernel, "compute", 8, 3, 3},
      {rt::FaultKind::StuckRank, "exchange", 5, 2, 2},
      {rt::FaultKind::TransferCorruption, "halo", 2, 3, 6},
      {rt::FaultKind::DroppedMessage, "exchange", 9, 1, 3},
  };
  ASSERT_FALSE(brittle.run_schedule(dense).ok());

  const rt::ChaosSchedule min = brittle.shrink(dense);
  EXPECT_LE(min.faults.size(), 5u);
  EXPECT_LT(min.total_fires(), dense.total_fires());
  // The irreducible core is the undetected-corruption class.
  ASSERT_EQ(min.faults.size(), 1u);
  EXPECT_EQ(min.faults[0].kind, rt::FaultKind::TransferCorruption);
  EXPECT_EQ(min.faults[0].count, 1);

  // Replayable artifact: JSON round-trip still fails, and identically.
  const rt::ChaosSchedule reparsed = rt::schedule_from_json(rt::schedule_to_json(min));
  const ChaosOutcome replay = brittle.run_schedule(reparsed);
  EXPECT_FALSE(replay.ok());
  EXPECT_FALSE(replay.survived);

  // The full defense absorbs the same minimal schedule.
  ChaosCampaign defended(s, tiny_physics());
  EXPECT_TRUE(defended.run_schedule(reparsed).ok());
}

// ---- regression pins from campaign minimization -----------------------------

// Minimized by the campaign shrinker from a failing over-dense band schedule
// (seed 4242, index 22) while the oracle still assumed an exactly conserved
// phase ledger: a rank death whose eviction restore takes a bit-flipped image
// read, an exchange hang escalating to a second eviction, and transfer
// corruption landing on the shrunk fleet's gather. Pinned here composed — the
// cross-class path the per-class suites never walk.
TEST(ChaosRegression, BandRankDeathPlusHangEscalationPlusCorruptRestore) {
  const BteScenario s = tiny_scenario();
  ChaosCampaign campaign(s, tiny_physics());
  rt::ChaosSchedule sched;
  sched.seed = 4242;
  sched.index = 22;
  sched.solver = "band";
  sched.nparts = 4;
  sched.nsteps = 24;
  sched.faults = {
      {rt::FaultKind::TransferCorruption, "gather", 38, 2, 4},
      {rt::FaultKind::BitFlipMessage, "ckpt-restore", 1, 1, 2},
      {rt::FaultKind::RankFailure, "band-rank", 17, 2, 1},
      {rt::FaultKind::HangExchange, "exchange", 12, 1, 1},
      {rt::FaultKind::HangExchange, "exchange-retry", 0, 1, 2},
  };
  const ChaosOutcome o = campaign.run_schedule(sched);
  EXPECT_TRUE(o.ok()) << o.detail;
  EXPECT_EQ(o.stats.evictions, 2);  // rank death + escalated hang
}

// Same era, cell flavor: a dropped-then-corrupted halo while a slow rank and
// an armed restore-path flip coexist; survives with rollbacks and lands exact.
TEST(ChaosRegression, CellCorruptionDuringRestoreWithSlowRank) {
  const BteScenario s = tiny_scenario();
  ChaosCampaign campaign(s, tiny_physics());
  rt::ChaosSchedule sched;
  sched.seed = 4242;
  sched.index = 3;
  sched.solver = "cell";
  sched.nparts = 4;
  sched.nsteps = 24;
  sched.faults = {
      {rt::FaultKind::TransferCorruption, "halo", 60, 1, 6},
      {rt::FaultKind::BitFlipMessage, "ckpt-restore", 0, 1, 1},
      {rt::FaultKind::SlowRank, "compute", 10, 2, 3},
      {rt::FaultKind::DroppedMessage, "halo", 58, 3, 2},
  };
  const ChaosOutcome o = campaign.run_schedule(sched);
  EXPECT_TRUE(o.ok()) << o.detail;
  EXPECT_GE(o.stats.rollbacks, 1);
}
