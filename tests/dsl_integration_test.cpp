// End-to-end DSL tests: the full pipeline (parse -> expand -> Euler ->
// classify -> compile -> execute) on physics with known behaviour, plus
// cross-target consistency (serial / threaded / simulated-GPU bitwise
// identical) and loop-order invariance.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/dsl/problem.hpp"
#include "mesh/mesh.hpp"

using namespace finch;
using dsl::Problem;
using dsl::Target;

namespace {

// Total extensive quantity sum(u*V) over the mesh.
double total_content(const Problem& p, const std::string& var) {
  const auto& f = p.fields().get(var);
  double total = 0;
  for (int32_t c = 0; c < f.num_cells(); ++c)
    for (int32_t d = 0; d < f.dof_per_cell(); ++d) total += f.at(c, d) * p.mesh().cell_volume(c);
  return total;
}

}  // namespace

TEST(DslPipeline, PureDecayMatchesAnalyticEuler) {
  // du/dt = -k u  ->  u_n = u0 (1 - k dt)^n exactly in Euler arithmetic.
  Problem p("decay");
  p.set_mesh(mesh::Mesh::structured_quad(3, 3, 1.0, 1.0));
  p.set_steps(0.01, 1);
  p.variable("u");
  p.coefficient("k", 2.0);
  p.conservation_form("u", "-k*u");
  p.initial("u", [](int32_t, std::span<const int32_t>) { return 5.0; });
  auto solver = p.compile(Target::CpuSerial);
  solver->run(10);
  const double expect = 5.0 * std::pow(1.0 - 2.0 * 0.01, 10);
  for (int32_t c = 0; c < 9; ++c) EXPECT_DOUBLE_EQ(p.fields().get("u").at(c, 0), expect);
}

TEST(DslPipeline, UniformFieldIsAdvectionFixedPoint) {
  // Constant u advected by constant velocity stays constant when the inflow
  // ghost value equals the constant.
  Problem p("adv-const");
  p.set_mesh(mesh::Mesh::structured_quad(6, 6, 1.0, 1.0));
  p.set_steps(0.001, 1);
  p.variable("u");
  p.coefficient("bx", 1.0);
  p.coefficient("by", 0.5);
  p.conservation_form("u", "-surface(upwind([bx; by], u))");
  p.initial("u", [](int32_t, std::span<const int32_t>) { return 3.0; });
  for (int region = 1; region <= 4; ++region)
    p.boundary("u", region, dsl::BcType::Value, "const3",
               [](const fvm::BoundaryContext&) { return 3.0; });
  auto solver = p.compile(Target::CpuSerial);
  solver->run(20);
  for (int32_t c = 0; c < 36; ++c) EXPECT_NEAR(p.fields().get("u").at(c, 0), 3.0, 1e-12);
}

TEST(DslPipeline, ZeroFluxBoundariesConserveMass) {
  // With all-walls zero-flux (default when no BC given), advection only
  // redistributes: sum(u V) is conserved to round-off.
  Problem p("adv-conserve");
  p.set_mesh(mesh::Mesh::structured_quad(8, 8, 1.0, 1.0));
  p.set_steps(0.002, 1);
  p.variable("u");
  p.coefficient("bx", 0.7);
  p.coefficient("by", -0.3);
  p.conservation_form("u", "-surface(upwind([bx; by], u))");
  p.initial("u", [](int32_t c, std::span<const int32_t>) { return c % 5 == 0 ? 2.0 : 0.5; });
  auto solver = p.compile(Target::CpuSerial);
  const double before = total_content(p, "u");
  solver->run(50);
  EXPECT_NEAR(total_content(p, "u"), before, 1e-10 * std::abs(before));
}

TEST(DslPipeline, UpwindTransportMovesFrontDownstream) {
  // A left-block profile advected right at speed 1: after t = 0.25, the front
  // has moved right; upwind keeps the solution monotone in [0,1].
  const int n = 20;
  Problem p("adv-front");
  p.set_mesh(mesh::Mesh::structured_quad(n, 1, 1.0, 1.0 / n));
  p.set_steps(0.4 / n, 1);  // CFL 0.4
  p.variable("u");
  p.coefficient("bx", 1.0);
  p.coefficient("by", 0.0);
  p.conservation_form("u", "-surface(upwind([bx; by], u))");
  p.initial("u", [n](int32_t c, std::span<const int32_t>) { return (c % n) < n / 4 ? 1.0 : 0.0; });
  p.boundary("u", 3, dsl::BcType::Value, "inflow1", [](const fvm::BoundaryContext&) { return 1.0; });
  auto solver = p.compile(Target::CpuSerial);
  solver->run(13);  // ~0.26 time units
  const auto& u = p.fields().get("u");
  // Monotone non-increasing left-to-right, bounded in [0,1].
  for (int c = 0; c + 1 < n; ++c) {
    EXPECT_GE(u.at(c, 0) + 1e-12, u.at(c + 1, 0));
    EXPECT_GE(u.at(c, 0), -1e-12);
    EXPECT_LE(u.at(c, 0), 1.0 + 1e-12);
  }
  // The front (u=0.5 crossing) moved from x~0.25 to x~0.5.
  int front = 0;
  for (int c = 0; c < n; ++c)
    if (u.at(c, 0) > 0.5) front = c;
  EXPECT_GT(front, n / 4);
  EXPECT_LT(front, 3 * n / 4);
}

TEST(DslPipeline, IndexedSystemDecaysPerBand) {
  // dI[d,b]/dt = (0 - I) * beta[b]: each band decays at its own rate.
  Problem p("bands");
  p.set_mesh(mesh::Mesh::structured_quad(2, 2, 1.0, 1.0));
  p.set_steps(0.01, 1);
  p.index("d", 1, 3);
  p.index("b", 1, 2);
  p.variable("I", {"d", "b"});
  p.variable("Io", {"b"});
  p.variable("beta", {"b"});
  p.conservation_form("I", "(Io[b] - I[d,b]) * beta[b]");
  p.initial("I", [](int32_t, std::span<const int32_t>) { return 1.0; });
  p.initial("Io", [](int32_t, std::span<const int32_t>) { return 0.0; });
  p.initial("beta", [](int32_t, std::span<const int32_t> idx) { return idx[0] == 0 ? 1.0 : 3.0; });
  auto solver = p.compile(Target::CpuSerial);
  solver->run(5);
  const auto& I = p.fields().get("I");
  const double e1 = std::pow(1.0 - 0.01 * 1.0, 5), e3 = std::pow(1.0 - 0.01 * 3.0, 5);
  for (int32_t c = 0; c < 4; ++c)
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(I.at(c, d + 3 * 0), e1, 1e-14);  // band 0 (dof = d + Nd*b)
      EXPECT_NEAR(I.at(c, d + 3 * 1), e3, 1e-14);  // band 1
    }
}

TEST(DslPipeline, AssemblyLoopOrderDoesNotChangeResults) {
  auto run_with_order = [](std::vector<std::string> order) {
    Problem p("perm");
    p.set_mesh(mesh::Mesh::structured_quad(4, 3, 1.0, 1.0));
    p.set_steps(0.005, 1);
    p.index("d", 1, 2);
    p.index("b", 1, 3);
    p.variable("I", {"d", "b"});
    p.variable("Io", {"b"});
    p.variable("beta", {"b"});
    p.coefficient("Sx", {1.0, -1.0}, {"d"});
    p.coefficient("Sy", {0.5, 0.5}, {"d"});
    p.coefficient("vg", {1.0, 2.0, 0.5}, {"b"});
    p.conservation_form("I", "(Io[b]-I[d,b])*beta[b] - surface(vg[b]*upwind([Sx[d];Sy[d]], I[d,b]))");
    p.initial("I", [](int32_t c, std::span<const int32_t> idx) {
      return 1.0 + 0.1 * c + 0.01 * idx[0] + 0.002 * idx[1];
    });
    p.initial("Io", [](int32_t, std::span<const int32_t>) { return 0.5; });
    p.initial("beta", [](int32_t, std::span<const int32_t>) { return 2.0; });
    if (!order.empty()) p.assembly_loops(std::move(order));
    auto solver = p.compile(Target::CpuSerial);
    solver->run(4);
    std::vector<double> out(p.fields().get("I").data().begin(), p.fields().get("I").data().end());
    return out;
  };
  auto base = run_with_order({});
  EXPECT_EQ(base, run_with_order({"b", "cells", "d"}));
  EXPECT_EQ(base, run_with_order({"d", "b", "cells"}));
  EXPECT_EQ(base, run_with_order({"cells", "b", "d"}));
}

TEST(DslPipeline, ThreadedTargetMatchesSerialBitwise) {
  auto build = [](rt::ThreadPool* pool) {
    auto p = std::make_unique<Problem>("mt");
    p->set_mesh(mesh::Mesh::structured_quad(6, 6, 1.0, 1.0));
    p->set_steps(0.002, 1);
    p->index("d", 1, 4);
    p->variable("I", {"d"});
    p->coefficient("Sx", {1.0, -1.0, 0.0, 0.5}, {"d"});
    p->coefficient("Sy", {0.0, 0.5, -1.0, 0.5}, {"d"});
    p->coefficient("vg", 1.5);
    p->conservation_form("I", "-surface(vg*upwind([Sx[d];Sy[d]], I[d]))");
    p->initial("I", [](int32_t c, std::span<const int32_t> idx) { return std::sin(c + idx[0]); });
    if (pool != nullptr) p->use_threads(pool);
    return p;
  };
  auto ps = build(nullptr);
  auto ss = ps->compile();
  ss->run(10);

  rt::ThreadPool pool(4);
  auto pt = build(&pool);
  auto st = pt->compile();
  st->run(10);

  auto a = ps->fields().get("I").data();
  auto b = pt->fields().get("I").data();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST(DslPipeline, GpuTargetMatchesSerialBitwise) {
  auto build = [](rt::SimGpu* gpu) {
    auto p = std::make_unique<Problem>("gpu");
    p->set_mesh(mesh::Mesh::structured_quad(5, 5, 1.0, 1.0));
    p->set_steps(0.002, 1);
    p->index("d", 1, 3);
    p->variable("I", {"d"});
    p->coefficient("Sx", {1.0, -0.5, 0.25}, {"d"});
    p->coefficient("Sy", {0.5, 1.0, -0.75}, {"d"});
    p->conservation_form("I", "-surface(upwind([Sx[d];Sy[d]], I[d]))");
    p->initial("I", [](int32_t c, std::span<const int32_t> idx) { return 1.0 + 0.3 * c - 0.1 * idx[0]; });
    p->boundary("I", 1, dsl::BcType::Value, "zero", [](const fvm::BoundaryContext&) { return 0.0; });
    if (gpu != nullptr) p->use_cuda(gpu);
    return p;
  };
  auto ps = build(nullptr);
  ps->compile()->run(8);

  rt::SimGpu gpu(rt::GpuSpec::a6000());
  auto pg = build(&gpu);
  pg->compile()->run(8);

  auto a = ps->fields().get("I").data();
  auto b = pg->fields().get("I").data();
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
  // The device did real work and real transfers.
  EXPECT_GT(gpu.counters().kernel_launches, 0);
  EXPECT_GT(gpu.counters().bytes_d2h, 0);
}

TEST(DslPipeline, PostStepCallbackRunsEachStep) {
  Problem p("poststep");
  p.set_mesh(mesh::Mesh::structured_quad(2, 2, 1.0, 1.0));
  p.set_steps(0.01, 1);
  p.variable("u");
  p.coefficient("k", 1.0);
  p.conservation_form("u", "-k*u");
  p.initial("u", [](int32_t, std::span<const int32_t>) { return 1.0; });
  int calls = 0;
  p.post_step([&calls](Problem&, double) { ++calls; });
  auto solver = p.compile(Target::CpuSerial);
  solver->run(7);
  EXPECT_EQ(calls, 7);
  EXPECT_NEAR(solver->time(), 0.07, 1e-15);
}

TEST(DslPipeline, PhaseTimersAccumulate) {
  Problem p("phases");
  p.set_mesh(mesh::Mesh::structured_quad(4, 4, 1.0, 1.0));
  p.set_steps(0.01, 1);
  p.variable("u");
  p.coefficient("k", 1.0);
  p.conservation_form("u", "-k*u");
  p.initial("u", [](int32_t, std::span<const int32_t>) { return 1.0; });
  p.post_step([](Problem&, double) { /* pretend temperature update */ });
  auto solver = p.compile(Target::CpuSerial);
  solver->run(3);
  EXPECT_GT(solver->phases().intensity, 0.0);
  EXPECT_GE(solver->phases().post_process, 0.0);
}

TEST(DslErrors, MissingMeshAndUnknownEntities) {
  Problem p("bad");
  p.variable("u");
  p.coefficient("k", 1.0);
  p.conservation_form("u", "-k*u");
  EXPECT_THROW(p.compile(Target::CpuSerial), std::logic_error);  // no mesh

  Problem q("bad2");
  q.set_mesh(mesh::Mesh::structured_quad(2, 2, 1.0, 1.0));
  EXPECT_THROW(q.conservation_form("nope", "-nope"), std::invalid_argument);
  EXPECT_THROW(q.variable("v", {"undeclared"}), std::invalid_argument);
  q.variable("u");
  EXPECT_THROW(q.coefficient("c", {1.0, 2.0}, {"undeclared"}), std::invalid_argument);
  EXPECT_THROW(q.compile(Target::CpuSerial), std::logic_error);  // no equation
}

TEST(DslErrors, GpuTargetRequiresDevice) {
  Problem p("nogpu");
  p.set_mesh(mesh::Mesh::structured_quad(2, 2, 1.0, 1.0));
  p.variable("u");
  p.coefficient("k", 1.0);
  p.conservation_form("u", "-k*u");
  p.initial("u", [](int32_t, std::span<const int32_t>) { return 1.0; });
  EXPECT_THROW(p.compile(Target::Gpu), std::logic_error);
}
