// Property test: the bytecode compiler+interpreter must agree with a direct
// tree-walking evaluation of the symbolic expression, for randomly generated
// expressions over the full node grammar (seeded, deterministic).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/codegen/bytecode.hpp"
#include "core/symbolic/printer.hpp"
#include "core/symbolic/simplify.hpp"

using namespace finch;
using codegen::EvalContext;

namespace {

struct Env {
  sym::EntityTable table;
  fvm::FieldSet fields;
  std::map<std::string, std::vector<double>> coefs;
  std::map<std::string, double> scalars;
  codegen::CompileEnv cenv;

  Env() {
    table.declare_index("d", 1, 3);
    table.declare_index("b", 1, 2);
    table.declare({"I", sym::EntityKind::Variable, 1, {"d", "b"}});
    table.declare({"u", sym::EntityKind::Variable, 1, {}});
    table.declare({"Sx", sym::EntityKind::Coefficient, 1, {"d"}});
    table.declare({"k", sym::EntityKind::Coefficient, 1, {}});
    fields.add("I", 4, 6);
    fields.add("u", 4, 1);
    for (int32_t c = 0; c < 4; ++c) {
      fields.get("u").at(c, 0) = 0.5 + c;
      for (int32_t dof = 0; dof < 6; ++dof) fields.get("I").at(c, dof) = 0.1 * (c + 1) * (dof + 1);
    }
    coefs["Sx"] = {0.3, -0.6, 0.9};
    scalars["k"] = 1.75;
    cenv.table = &table;
    cenv.index_order = {"b", "d"};
    cenv.index_extent = {2, 3};
    cenv.fields = &fields;
    cenv.coefficients = &coefs;
    cenv.scalar_coefficients = &scalars;
  }
};

// Reference evaluator: straight recursion over the tree.
double ref_eval(const sym::Expr& e, const Env& env, const EvalContext& ctx) {
  switch (e->kind()) {
    case sym::Kind::Number:
      return sym::as<sym::NumberNode>(e)->value;
    case sym::Kind::Symbol: {
      const std::string& n = sym::as<sym::SymbolNode>(e)->name;
      if (n == "dt") return ctx.dt;
      if (n == "NORMAL_1") return ctx.normal[0];
      if (n == "NORMAL_2") return ctx.normal[1];
      throw std::logic_error("ref_eval: unexpected symbol " + n);
    }
    case sym::Kind::EntityRef: {
      const auto* r = sym::as<sym::EntityRefNode>(e);
      if (r->name == "k") return env.scalars.at("k");
      // Resolve indices (b slot 0, d slot 1).
      auto idx_value = [&](const sym::Expr& ie) {
        const auto* s = sym::as<sym::SymbolNode>(ie);
        return s->name == "b" ? ctx.loop_values[0] : ctx.loop_values[1];
      };
      if (r->name == "Sx") return env.coefs.at("Sx")[static_cast<size_t>(idx_value(r->indices[0]))];
      const int32_t cell = r->side == sym::CellSide::Cell2 && ctx.neighbor >= 0 ? ctx.neighbor : ctx.cell;
      if (r->name == "u") return env.fields.get("u").at(cell, 0);
      const int32_t d = idx_value(r->indices[0]);
      const int32_t b = idx_value(r->indices[1]);
      return env.fields.get("I").at(cell, d + 3 * b);
    }
    case sym::Kind::Add: {
      double s = 0;
      for (const auto& t : sym::as<sym::AddNode>(e)->terms) s += ref_eval(t, env, ctx);
      return s;
    }
    case sym::Kind::Mul: {
      double s = 1;
      for (const auto& f : sym::as<sym::MulNode>(e)->factors) {
        if (const auto* p = sym::as<sym::PowNode>(f); p != nullptr && sym::is_number(p->expo, -1.0)) {
          s /= ref_eval(p->base, env, ctx);
          continue;
        }
        s *= ref_eval(f, env, ctx);
      }
      return s;
    }
    case sym::Kind::Pow: {
      const auto* p = sym::as<sym::PowNode>(e);
      if (sym::is_number(p->expo, 2.0)) {
        const double b = ref_eval(p->base, env, ctx);
        return b * b;
      }
      if (sym::is_number(p->expo, -1.0)) return 1.0 / ref_eval(p->base, env, ctx);
      return std::pow(ref_eval(p->base, env, ctx), ref_eval(p->expo, env, ctx));
    }
    case sym::Kind::Compare: {
      const auto* c = sym::as<sym::CompareNode>(e);
      const double l = ref_eval(c->lhs, env, ctx), r = ref_eval(c->rhs, env, ctx);
      switch (c->op) {
        case sym::CmpOp::GT: return l > r;
        case sym::CmpOp::GE: return l >= r;
        case sym::CmpOp::LT: return l < r;
        case sym::CmpOp::LE: return l <= r;
        case sym::CmpOp::EQ: return l == r;
        case sym::CmpOp::NE: return l != r;
      }
      return 0;
    }
    case sym::Kind::Call: {
      const auto* c = sym::as<sym::CallNode>(e);
      if (c->func == "conditional")
        return ref_eval(c->args[0], env, ctx) != 0.0 ? ref_eval(c->args[1], env, ctx)
                                                     : ref_eval(c->args[2], env, ctx);
      if (c->func == "exp") return std::exp(ref_eval(c->args[0], env, ctx));
      if (c->func == "abs") return std::abs(ref_eval(c->args[0], env, ctx));
      throw std::logic_error("ref_eval: unexpected call " + c->func);
    }
    default:
      throw std::logic_error("ref_eval: unexpected node");
  }
}

// Random expression generator over the supported grammar.
class Gen {
 public:
  explicit Gen(uint32_t seed) : rng_(seed) {}

  sym::Expr expr(int depth) {
    if (depth <= 0) return leaf();
    switch (rng_() % 7) {
      case 0: case 1: {
        std::vector<sym::Expr> t;
        const int n = 2 + static_cast<int>(rng_() % 2);
        for (int i = 0; i < n; ++i) t.push_back(expr(depth - 1));
        return sym::add(std::move(t));
      }
      case 2: case 3: {
        std::vector<sym::Expr> f;
        const int n = 2 + static_cast<int>(rng_() % 2);
        for (int i = 0; i < n; ++i) f.push_back(expr(depth - 1));
        return sym::mul(std::move(f));
      }
      case 4:
        return sym::pow(expr(depth - 1), sym::num(2.0));
      case 5:
        return sym::conditional(sym::compare(sym::CmpOp::GT, expr(depth - 1), sym::num(0.0)),
                                expr(depth - 1), expr(depth - 1));
      default:
        return sym::call(rng_() % 2 == 0 ? "exp" : "abs", {scaled_leaf()});
    }
  }

 private:
  sym::Expr scaled_leaf() {
    // keep exp() arguments small
    return sym::mul({sym::num(0.1), leaf()});
  }

  sym::Expr leaf() {
    switch (rng_() % 6) {
      case 0: return sym::num(static_cast<double>(rng_() % 19) / 3.0 - 3.0);
      case 1: return sym::sym("dt");
      case 2: return sym::sym(rng_() % 2 == 0 ? "NORMAL_1" : "NORMAL_2");
      case 3: return sym::entity("u", sym::EntityKind::Variable, 1, {},
                                 rng_() % 2 == 0 ? sym::CellSide::Self : sym::CellSide::Cell2);
      case 4: return sym::entity("I", sym::EntityKind::Variable, 1, {sym::sym("d"), sym::sym("b")});
      default: return sym::entity("Sx", sym::EntityKind::Coefficient, 1, {sym::sym("d")});
    }
  }

  std::mt19937 rng_;
};

}  // namespace

class BytecodeFuzz : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BytecodeFuzz, CompiledMatchesReference) {
  Env env;
  Gen gen(GetParam());
  for (int round = 0; round < 60; ++round) {
    sym::Expr raw = gen.expr(3);
    sym::Expr e = sym::simplify(raw);
    codegen::Program prog = codegen::compile(e, env.cenv);
    // Also verify expansion preserves semantics.
    sym::Expr ex = sym::expand(raw);
    codegen::Program prog_ex = codegen::compile(ex, env.cenv);
    for (int trial = 0; trial < 4; ++trial) {
      EvalContext ctx;
      ctx.cell = trial % 4;
      ctx.neighbor = (trial + 1) % 4;
      ctx.dt = 0.25 * (trial + 1);
      ctx.normal = {trial % 2 ? 1.0 : -0.5, trial % 3 ? 0.5 : -1.0, 0.0};
      ctx.loop_values = {trial % 2, trial % 3, 0, 0};
      const double want = ref_eval(e, env, ctx);
      const double got = codegen::eval(prog, ctx);
      const double got_ex = codegen::eval(prog_ex, ctx);
      if (std::isfinite(want)) {
        EXPECT_NEAR(got, want, 1e-9 * (1.0 + std::abs(want)))
            << "expr: " << sym::to_string(e) << " trial " << trial;
        EXPECT_NEAR(got_ex, want, 1e-6 * (1.0 + std::abs(want)))
            << "expanded expr: " << sym::to_string(ex);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytecodeFuzz, ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u));

// ---- non-finite guard ----------------------------------------------------
// Degenerate operands (division by zero, pow of a negative base, log of a
// non-positive argument) must evaluate without crashing, and eval_guarded()
// must report the resulting NaN/Inf instead of letting it pass silently.

TEST(BytecodeGuard, DivisionByZeroIsReported) {
  Env env;
  // 1 / dt with dt == 0: compiles to a Div, evaluates to +Inf.
  sym::Expr e = sym::mul({sym::num(1.0), sym::pow(sym::sym("dt"), sym::num(-1.0))});
  codegen::Program prog = codegen::compile(e, env.cenv);
  EvalContext ctx;
  ctx.dt = 0.0;
  const double plain = codegen::eval(prog, ctx);
  EXPECT_TRUE(std::isinf(plain));
  codegen::GuardReport report;
  const double guarded = codegen::eval_guarded(prog, ctx, report);
  EXPECT_TRUE(std::isinf(guarded));
  EXPECT_EQ(report.evals, 1);
  EXPECT_EQ(report.nonfinite_results, 1);
  EXPECT_GE(report.first_instr, 0);
  EXPECT_EQ(report.first_op, codegen::Op::Div);
  EXPECT_FALSE(report.clean());
}

TEST(BytecodeGuard, PowNegativeBaseIsReported) {
  Env env;
  // NORMAL_1 ^ 0.5 with a negative normal component -> NaN.
  sym::Expr e = sym::pow(sym::sym("NORMAL_1"), sym::num(0.5));
  codegen::Program prog = codegen::compile(e, env.cenv);
  EvalContext ctx;
  ctx.normal = {-1.0, 0.0, 0.0};
  EXPECT_TRUE(std::isnan(codegen::eval(prog, ctx)));
  codegen::GuardReport report;
  EXPECT_TRUE(std::isnan(codegen::eval_guarded(prog, ctx, report)));
  EXPECT_EQ(report.nonfinite_results, 1);
  EXPECT_EQ(report.first_op, codegen::Op::Pow);
}

TEST(BytecodeGuard, LogOfZeroAndNegativeIsReported) {
  Env env;
  sym::Expr e = sym::call("log", {sym::sym("dt")});
  codegen::Program prog = codegen::compile(e, env.cenv);
  codegen::GuardReport report;
  EvalContext ctx;
  ctx.dt = 0.0;  // log(0) -> -Inf
  EXPECT_TRUE(std::isinf(codegen::eval_guarded(prog, ctx, report)));
  ctx.dt = -2.0;  // log(<0) -> NaN
  EXPECT_TRUE(std::isnan(codegen::eval_guarded(prog, ctx, report)));
  EXPECT_EQ(report.evals, 2);
  EXPECT_EQ(report.nonfinite_results, 2);
  EXPECT_EQ(report.first_op, codegen::Op::MathLog);
  EXPECT_FALSE(report.clean());
}

TEST(BytecodeGuard, CleanExpressionReportsClean) {
  Env env;
  sym::Expr e = sym::mul({sym::num(2.0), sym::sym("dt")});
  codegen::Program prog = codegen::compile(e, env.cenv);
  EvalContext ctx;
  ctx.dt = 0.5;
  codegen::GuardReport report;
  EXPECT_DOUBLE_EQ(codegen::eval_guarded(prog, ctx, report), 1.0);
  EXPECT_EQ(report.evals, 1);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.first_instr, -1);
}

TEST(BytecodeGuard, GuardedMatchesUnguardedOnFuzzedExpressions) {
  Env env;
  Gen gen(1234u);
  codegen::GuardReport report;
  for (int round = 0; round < 40; ++round) {
    sym::Expr e = sym::simplify(gen.expr(3));
    codegen::Program prog = codegen::compile(e, env.cenv);
    EvalContext ctx;
    ctx.cell = round % 4;
    ctx.neighbor = (round + 1) % 4;
    ctx.dt = 0.25 * (round % 5);
    ctx.normal = {round % 2 ? 1.0 : -0.5, 0.5, 0.0};
    ctx.loop_values = {round % 2, round % 3, 0, 0};
    const double plain = codegen::eval(prog, ctx);
    const double guarded = codegen::eval_guarded(prog, ctx, report);
    if (std::isfinite(plain))
      EXPECT_DOUBLE_EQ(guarded, plain);
    else
      EXPECT_FALSE(std::isfinite(guarded));
  }
  EXPECT_EQ(report.evals, 40);
}
