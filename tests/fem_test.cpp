// FEM substrate tests: sparse algebra, Q1 assembly invariants, the weak-form
// classification (§II.A's "linear and bilinear groups"), the pattern-matching
// lowering, and convergence of the assembled solvers against manufactured
// solutions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/symbolic/printer.hpp"
#include "fem/heat_solver.hpp"

using namespace finch;
using namespace finch::fem;

// ---- sparse ------------------------------------------------------------------

TEST(Sparse, TripletsAccumulateDuplicates) {
  CsrMatrix m = CsrMatrix::from_triplets(3, {0, 0, 1, 2, 0}, {0, 1, 1, 2, 0}, {1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 6.0);  // 1 + 5
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
  EXPECT_EQ(m.nonzeros(), 4);
}

TEST(Sparse, MultiplyMatchesDense) {
  CsrMatrix m = CsrMatrix::from_triplets(2, {0, 0, 1}, {0, 1, 1}, {2.0, -1.0, 3.0});
  std::vector<double> x = {1.0, 2.0}, y(2);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Sparse, SumUnionOfSparsity) {
  CsrMatrix a = CsrMatrix::from_triplets(2, {0}, {0}, {1.0});
  CsrMatrix b = CsrMatrix::from_triplets(2, {1, 0}, {1, 0}, {2.0, 3.0});
  CsrMatrix c = CsrMatrix::sum(a, b, 0.5);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 1.0);
}

TEST(Sparse, CgSolvesSpdSystem) {
  // Laplacian-like tridiagonal system.
  const int n = 50;
  std::vector<int32_t> r, c;
  std::vector<double> v;
  for (int i = 0; i < n; ++i) {
    r.push_back(i); c.push_back(i); v.push_back(2.0);
    if (i > 0) { r.push_back(i); c.push_back(i - 1); v.push_back(-1.0); }
    if (i < n - 1) { r.push_back(i); c.push_back(i + 1); v.push_back(-1.0); }
  }
  CsrMatrix A = CsrMatrix::from_triplets(n, std::move(r), std::move(c), std::move(v));
  std::vector<double> b(static_cast<size_t>(n), 1.0), x(static_cast<size_t>(n), 0.0);
  CgResult res = conjugate_gradient(A, b, x, 1e-12);
  EXPECT_TRUE(res.converged);
  std::vector<double> y(static_cast<size_t>(n));
  A.multiply(x, y);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(y[static_cast<size_t>(i)], 1.0, 1e-8);
}

TEST(Sparse, DirichletPreservesConstrainedValues) {
  CsrMatrix A = CsrMatrix::from_triplets(3, {0, 0, 1, 1, 1, 2, 2}, {0, 1, 0, 1, 2, 1, 2},
                                         {2, -1, -1, 2, -1, -1, 2});
  std::vector<double> rhs = {0.0, 0.0, 0.0};
  std::vector<int32_t> dofs = {0};
  std::vector<double> vals = {5.0};
  A.apply_dirichlet(dofs, vals, rhs);
  std::vector<double> x = {0, 0, 0};
  conjugate_gradient(A, rhs, x, 1e-12);
  EXPECT_NEAR(x[0], 5.0, 1e-10);
  // Interior solves the constrained system: x1 = (x0 + x2)/... consistent.
  EXPECT_NEAR(2 * x[1] - x[2], 5.0, 1e-8);
}

// ---- assembly -----------------------------------------------------------------

TEST(Assembly, ShapeFunctionsPartitionOfUnity) {
  for (double xi : {-0.9, -0.3, 0.0, 0.5, 1.0}) {
    for (double eta : {-1.0, -0.2, 0.4, 0.8}) {
      auto N = q1_shape(xi, eta);
      EXPECT_NEAR(N[0] + N[1] + N[2] + N[3], 1.0, 1e-14);
      auto dN = q1_shape_grad(xi, eta);
      EXPECT_NEAR(dN[0][0] + dN[1][0] + dN[2][0] + dN[3][0], 0.0, 1e-14);
      EXPECT_NEAR(dN[0][1] + dN[1][1] + dN[2][1] + dN[3][1], 0.0, 1e-14);
    }
  }
}

TEST(Assembly, NodeMeshConnectivity) {
  NodeMesh mesh(3, 2, 3.0, 2.0);
  EXPECT_EQ(mesh.num_nodes(), 12);
  EXPECT_EQ(mesh.num_elements(), 6);
  auto nodes = mesh.element_nodes(0);
  EXPECT_EQ(nodes[0], 0);
  EXPECT_EQ(nodes[1], 1);
  EXPECT_EQ(nodes[2], 5);
  EXPECT_EQ(nodes[3], 4);
  EXPECT_EQ(mesh.boundary_nodes(1).size(), 4u);
  EXPECT_EQ(mesh.boundary_nodes(3).size(), 3u);
  EXPECT_EQ(mesh.all_boundary_nodes().size(), 10u);  // 12 nodes, 2 interior
}

TEST(Assembly, StiffnessRowsSumToZero) {
  NodeMesh mesh(5, 4, 1.0, 1.0);
  CsrMatrix K = assemble_stiffness(mesh);
  for (int32_t r = 0; r < K.rows(); ++r) EXPECT_NEAR(K.row_sum(r), 0.0, 1e-12);
  // Symmetry on a few entries.
  EXPECT_NEAR(K.at(0, 1), K.at(1, 0), 1e-14);
  EXPECT_NEAR(K.at(7, 8), K.at(8, 7), 1e-14);
}

TEST(Assembly, MassTotalEqualsDomainArea) {
  NodeMesh mesh(6, 3, 2.0, 1.5);
  CsrMatrix M = assemble_mass(mesh);
  double total = 0;
  for (int32_t r = 0; r < M.rows(); ++r) total += M.row_sum(r);
  EXPECT_NEAR(total, 3.0, 1e-12);  // area = 2.0 * 1.5
  auto lumped = assemble_lumped_mass(mesh);
  double lumped_total = 0;
  for (double v : lumped) lumped_total += v;
  EXPECT_NEAR(lumped_total, 3.0, 1e-12);
}

TEST(Assembly, LoadOfConstantIntegratesExactly) {
  NodeMesh mesh(4, 4, 1.0, 1.0);
  auto load = assemble_load(mesh, [](mesh::Vec3) { return 3.0; });
  double total = 0;
  for (double v : load) total += v;
  EXPECT_NEAR(total, 3.0, 1e-12);
}

// ---- weak-form classification & lowering ---------------------------------------

TEST(WeakForm, ClassifiesBilinearAndLinearGroups) {
  sym::EntityTable t;
  t.declare({"u", sym::EntityKind::Variable, 1, {}});
  t.declare({"v", sym::EntityKind::Variable, 1, {}});
  t.declare({"alpha", sym::EntityKind::Coefficient, 1, {}});
  t.declare({"f", sym::EntityKind::Coefficient, 1, {}});
  auto terms = classify_weak_form("-alpha * dot(grad(u), grad(v)) + f * v", t, "u", "v");
  ASSERT_EQ(terms.bilinear.size(), 1u);
  ASSERT_EQ(terms.linear.size(), 1u);
  EXPECT_EQ(sym::to_string(terms.bilinear[0]), "-_alpha_1*grad(_u_1)*grad(_v_1)");
  EXPECT_EQ(sym::to_string(terms.linear[0]), "_f_1*_v_1");
}

TEST(WeakForm, ReactionTermIsMass) {
  sym::EntityTable t;
  t.declare({"u", sym::EntityKind::Variable, 1, {}});
  t.declare({"v", sym::EntityKind::Variable, 1, {}});
  auto terms = classify_weak_form("-2 * u * v", t, "u", "v");
  auto low = lower_weak_form(terms, "u", "v");
  ASSERT_EQ(low.matrices.size(), 1u);
  EXPECT_EQ(low.matrices[0].kind, BilinearOp::Kind::Mass);
  EXPECT_DOUBLE_EQ(low.matrices[0].constant, -2.0);
}

TEST(WeakForm, DiffusionTermIsStiffness) {
  sym::EntityTable t;
  t.declare({"u", sym::EntityKind::Variable, 1, {}});
  t.declare({"v", sym::EntityKind::Variable, 1, {}});
  t.declare({"alpha", sym::EntityKind::Coefficient, 1, {}});
  auto low = lower_weak_form(classify_weak_form("-alpha*dot(grad(u), grad(v))", t, "u", "v"), "u", "v");
  ASSERT_EQ(low.matrices.size(), 1u);
  EXPECT_EQ(low.matrices[0].kind, BilinearOp::Kind::Stiffness);
  EXPECT_EQ(low.matrices[0].coefficient, "alpha");
  EXPECT_DOUBLE_EQ(low.matrices[0].constant, -1.0);
}

TEST(WeakForm, RejectsTermWithoutTestFunction) {
  sym::EntityTable t;
  t.declare({"u", sym::EntityKind::Variable, 1, {}});
  t.declare({"v", sym::EntityKind::Variable, 1, {}});
  EXPECT_THROW(classify_weak_form("u + u*v", t, "u", "v"), std::invalid_argument);
}

TEST(WeakForm, RejectsUnsupportedBilinearPattern) {
  sym::EntityTable t;
  t.declare({"u", sym::EntityKind::Variable, 1, {}});
  t.declare({"v", sym::EntityKind::Variable, 1, {}});
  auto terms = classify_weak_form("grad(u) * v", t, "u", "v");
  EXPECT_THROW(lower_weak_form(terms, "u", "v"), std::invalid_argument);
}

// ---- end-to-end FEM solves ------------------------------------------------------

TEST(FemHeat, SteadyManufacturedSolutionConverges) {
  // -lap(u) = 2 pi^2 sin(pi x) sin(pi y), u = 0 on the boundary;
  // exact u = sin(pi x) sin(pi y). L2 error must drop ~4x per refinement.
  auto l2_error = [](int n) {
    FemHeatProblem p(NodeMesh(n, n, 1.0, 1.0));
    p.coefficient("alpha", [](mesh::Vec3) { return 1.0; });
    p.coefficient("f", [](mesh::Vec3 x) {
      return 2.0 * M_PI * M_PI * std::sin(M_PI * x.x) * std::sin(M_PI * x.y);
    });
    p.weak_form("-alpha * dot(grad(u), grad(v)) + f * v");
    for (int region = 1; region <= 4; ++region)
      p.dirichlet(region, [](mesh::Vec3) { return 0.0; });
    auto u = p.solve_steady(1e-12);
    double err2 = 0;
    const double h2 = (1.0 / n) * (1.0 / n);
    for (int32_t k = 0; k < p.mesh().num_nodes(); ++k) {
      const auto x = p.mesh().node(k);
      const double e = u[static_cast<size_t>(k)] - std::sin(M_PI * x.x) * std::sin(M_PI * x.y);
      err2 += e * e * h2;
    }
    return std::sqrt(err2);
  };
  const double e8 = l2_error(8), e16 = l2_error(16);
  EXPECT_LT(e16, e8 / 3.0);  // ~O(h^2)
  EXPECT_LT(e16, 0.01);
}

TEST(FemHeat, SteadyLinearProfileIsExact) {
  // No source, u = x on left/right walls' values: Q1 reproduces linears exactly.
  FemHeatProblem p(NodeMesh(7, 5, 1.0, 1.0));
  p.coefficient("alpha", [](mesh::Vec3) { return 2.5; });
  p.weak_form("-alpha * dot(grad(u), grad(v))");
  for (int region = 1; region <= 4; ++region)
    p.dirichlet(region, [](mesh::Vec3 x) { return x.x; });
  auto u = p.solve_steady(1e-12);
  for (int32_t k = 0; k < p.mesh().num_nodes(); ++k)
    EXPECT_NEAR(u[static_cast<size_t>(k)], p.mesh().node(k).x, 1e-9);
}

TEST(FemHeat, TransientDecaysAtAnalyticRate) {
  // du/dt = lap(u), u0 = sin(pi x) sin(pi y): u(t) = u0 exp(-2 pi^2 t).
  const int n = 16;
  FemHeatProblem p(NodeMesh(n, n, 1.0, 1.0));
  p.coefficient("alpha", [](mesh::Vec3) { return 1.0; });
  p.weak_form("-alpha * dot(grad(u), grad(v))");
  for (int region = 1; region <= 4; ++region)
    p.dirichlet(region, [](mesh::Vec3) { return 0.0; });
  auto u = p.interpolate([](mesh::Vec3 x) { return std::sin(M_PI * x.x) * std::sin(M_PI * x.y); });
  const double dt = 1e-4;  // well under the explicit stability limit (~h^2/4)
  const int steps = 400;
  p.advance(u, dt, steps);
  const double decay = std::exp(-2.0 * M_PI * M_PI * dt * steps);
  // Check the center node (peak of the mode).
  const int32_t center = (n / 2) * (n + 1) + n / 2;
  EXPECT_NEAR(u[static_cast<size_t>(center)], decay, 0.05 * decay);
}

TEST(FemHeat, TransientRespectsMaximumPrinciple) {
  FemHeatProblem p(NodeMesh(12, 12, 1.0, 1.0));
  p.coefficient("alpha", [](mesh::Vec3) { return 1.0; });
  p.weak_form("-alpha * dot(grad(u), grad(v))");
  for (int region = 1; region <= 4; ++region)
    p.dirichlet(region, [](mesh::Vec3) { return 0.0; });
  auto u = p.interpolate([](mesh::Vec3 x) { return x.x < 0.5 ? 1.0 : 0.0; });
  p.advance(u, 5e-5, 200);
  for (double v : u) {
    EXPECT_GE(v, -0.05);
    EXPECT_LE(v, 1.05);
  }
}

TEST(FemHeat, HelmholtzCombinesStiffnessAndMass) {
  // -lap(u) + u = (2 pi^2 + 1) sin(pi x) sin(pi y): exact solution unchanged.
  const int n = 16;
  FemHeatProblem p(NodeMesh(n, n, 1.0, 1.0));
  p.coefficient("alpha", [](mesh::Vec3) { return 1.0; });
  p.coefficient("f", [](mesh::Vec3 x) {
    return (2.0 * M_PI * M_PI + 1.0) * std::sin(M_PI * x.x) * std::sin(M_PI * x.y);
  });
  p.weak_form("-alpha * dot(grad(u), grad(v)) - u * v + f * v");
  for (int region = 1; region <= 4; ++region)
    p.dirichlet(region, [](mesh::Vec3) { return 0.0; });
  auto u = p.solve_steady(1e-12);
  const int32_t center = (n / 2) * (n + 1) + n / 2;
  EXPECT_NEAR(u[static_cast<size_t>(center)], 1.0, 0.02);
}

TEST(FemHeat, NeumannFluxBalancesAtSteadyState) {
  // Insulated problem except: unit influx on the left wall, u = 0 on the
  // right wall. Steady solution of -u'' = 0 with u'(0) = -q/alpha is linear:
  // u(x) = q (1 - x) / alpha.
  const int n = 12;
  FemHeatProblem p(NodeMesh(n, n, 1.0, 1.0));
  p.coefficient("alpha", [](mesh::Vec3) { return 2.0; });
  p.weak_form("-alpha * dot(grad(u), grad(v))");
  p.neumann(3, [](mesh::Vec3) { return 1.0; });  // q = 1 into the left wall
  p.dirichlet(4, [](mesh::Vec3) { return 0.0; });
  auto u = p.solve_steady(1e-12);
  for (int32_t k = 0; k < p.mesh().num_nodes(); ++k) {
    const auto x = p.mesh().node(k);
    EXPECT_NEAR(u[static_cast<size_t>(k)], (1.0 - x.x) / 2.0, 1e-6) << "node " << k;
  }
}

TEST(FemHeat, NeumannBeforeWeakFormThrows) {
  FemHeatProblem p(NodeMesh(4, 4, 1.0, 1.0));
  EXPECT_THROW(p.neumann(1, [](mesh::Vec3) { return 1.0; }), std::logic_error);
}
