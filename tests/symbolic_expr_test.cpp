// Unit tests for the expression AST: construction, equality, hashing,
// traversal and the simplify/expand normalization passes.
#include <gtest/gtest.h>

#include "core/symbolic/expr.hpp"
#include "core/symbolic/printer.hpp"
#include "core/symbolic/simplify.hpp"

namespace sym = finch::sym;
using sym::Expr;

TEST(Expr, NumberAndSymbolPrint) {
  EXPECT_EQ(sym::to_string(sym::num(3.0)), "3");
  EXPECT_EQ(sym::to_string(sym::num(2.5)), "2.5");
  EXPECT_EQ(sym::to_string(sym::sym("dt")), "dt");
}

TEST(Expr, EntityPrintStyleMatchesPaper) {
  // Paper renders entity u as _u_1 and neighbor values as CELL1_u_1 / CELL2_u_1.
  Expr u = sym::entity("u", sym::EntityKind::Variable, 1);
  EXPECT_EQ(sym::to_string(u), "_u_1");
  Expr u1 = sym::entity("u", sym::EntityKind::Variable, 1, {}, sym::CellSide::Cell1);
  EXPECT_EQ(sym::to_string(u1), "CELL1_u_1");
  Expr u2 = sym::entity("u", sym::EntityKind::Variable, 1, {}, sym::CellSide::Cell2);
  EXPECT_EQ(sym::to_string(u2), "CELL2_u_1");
  Expr I = sym::entity("I", sym::EntityKind::Variable, 1, {sym::sym("d"), sym::sym("b")});
  EXPECT_EQ(sym::to_string(I), "_I_1[d,b]");
}

TEST(Expr, AddMulPrinting) {
  Expr e = sym::add({sym::sym("a"), sym::neg(sym::sym("b"))});
  EXPECT_EQ(sym::to_string(sym::simplify(e)), "a - b");
  Expr m = sym::mul({sym::num(-1.0), sym::sym("k"), sym::sym("u")});
  EXPECT_EQ(sym::to_string(m), "-k*u");
  Expr d = sym::div(sym::sym("a"), sym::sym("b"));
  EXPECT_EQ(sym::to_string(d), "a/b");
}

TEST(Expr, StructuralEquality) {
  Expr a = sym::mul({sym::num(2.0), sym::sym("x")});
  Expr b = sym::mul({sym::num(2.0), sym::sym("x")});
  Expr c = sym::mul({sym::num(3.0), sym::sym("x")});
  EXPECT_TRUE(sym::equal(a, b));
  EXPECT_FALSE(sym::equal(a, c));
  EXPECT_EQ(sym::hash(a), sym::hash(b));
}

TEST(Expr, EntityEqualityDistinguishesSideAndKnown) {
  Expr a = sym::entity("u", sym::EntityKind::Variable, 1, {}, sym::CellSide::Cell1);
  Expr b = sym::entity("u", sym::EntityKind::Variable, 1, {}, sym::CellSide::Cell2);
  Expr c = sym::entity("u", sym::EntityKind::Variable, 1, {}, sym::CellSide::Cell1, true);
  EXPECT_FALSE(sym::equal(a, b));
  EXPECT_FALSE(sym::equal(a, c));
}

TEST(Simplify, FoldsConstants) {
  Expr e = sym::add({sym::num(1.0), sym::num(2.0), sym::sym("x"), sym::num(0.0)});
  EXPECT_EQ(sym::to_string(sym::simplify(e)), "x + 3");
  Expr m = sym::mul({sym::num(2.0), sym::num(3.0), sym::sym("x")});
  EXPECT_EQ(sym::to_string(sym::simplify(m)), "6*x");
}

TEST(Simplify, ZeroAnnihilatesProduct) {
  Expr m = sym::mul({sym::num(0.0), sym::sym("x"), sym::sym("y")});
  EXPECT_EQ(sym::to_string(sym::simplify(m)), "0");
}

TEST(Simplify, DropsUnitFactorsAndZeroTerms) {
  Expr m = sym::mul({sym::num(1.0), sym::sym("x")});
  EXPECT_EQ(sym::to_string(sym::simplify(m)), "x");
  Expr a = sym::add({sym::num(0.0), sym::sym("x")});
  EXPECT_EQ(sym::to_string(sym::simplify(a)), "x");
}

TEST(Simplify, FlattensNested) {
  Expr e = sym::add({sym::sym("a"), sym::add({sym::sym("b"), sym::add({sym::sym("c")})})});
  auto terms = sym::top_level_terms(sym::simplify(e));
  EXPECT_EQ(terms.size(), 3u);
}

TEST(Simplify, PowIdentities) {
  EXPECT_EQ(sym::to_string(sym::simplify(sym::pow(sym::sym("x"), sym::num(1.0)))), "x");
  EXPECT_EQ(sym::to_string(sym::simplify(sym::pow(sym::sym("x"), sym::num(0.0)))), "1");
  EXPECT_EQ(sym::to_string(sym::simplify(sym::pow(sym::num(2.0), sym::num(3.0)))), "8");
}

TEST(Expand, DistributesOverSum) {
  // dt * (a + b)  ->  dt*a + dt*b
  Expr e = sym::mul({sym::sym("dt"), sym::add({sym::sym("a"), sym::sym("b")})});
  EXPECT_EQ(sym::to_string(sym::expand(e)), "dt*a + dt*b");
}

TEST(Expand, DoesNotEnterCallArguments) {
  // Conditional branches stay intact: dt * conditional(c, a+b, x) keeps its sum.
  Expr cond = sym::conditional(sym::compare(sym::CmpOp::GT, sym::sym("c"), sym::num(0.0)),
                               sym::add({sym::sym("a"), sym::sym("b")}), sym::sym("x"));
  Expr e = sym::mul({sym::sym("dt"), cond});
  EXPECT_EQ(sym::to_string(sym::expand(e)), "dt*conditional(c > 0, a + b, x)");
}

TEST(Expand, NestedDistribution) {
  // (a+b)*(c+d) -> four terms
  Expr e = sym::mul({sym::add({sym::sym("a"), sym::sym("b")}), sym::add({sym::sym("c"), sym::sym("d")})});
  auto terms = sym::top_level_terms(sym::expand(e));
  EXPECT_EQ(terms.size(), 4u);
}

TEST(Traverse, ContainsAndCollect) {
  Expr I = sym::entity("I", sym::EntityKind::Variable, 1, {sym::sym("d")});
  Expr e = sym::mul({sym::sym("vg"), I});
  EXPECT_TRUE(sym::contains(e, [](const Expr& n) { return n->kind() == sym::Kind::EntityRef; }));
  auto refs = sym::collect_entity_refs(e);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(sym::as<sym::EntityRefNode>(refs[0])->name, "I");
}

TEST(Traverse, TransformRewritesLeaves) {
  Expr e = sym::add({sym::sym("x"), sym::sym("y")});
  Expr r = sym::transform(e, [](const Expr& n) -> Expr {
    if (const auto* s = sym::as<sym::SymbolNode>(n); s != nullptr && s->name == "x") return sym::num(5.0);
    return n;
  });
  EXPECT_EQ(sym::to_string(sym::simplify(r)), "y + 5");
}
