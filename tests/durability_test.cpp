// Durable runs: the manifest sidecar, on-disk checkpoint generations,
// resource-exhaustion faults with graceful degradation, cooperative
// cancellation, and process-crash restart.
//
// The tentpole property under test: for any interruption — SIGKILL at a step
// boundary, SIGKILL inside a checkpoint's .tmp-write window, an OOM-style
// drain, an operator cancel — restarting via resume_from(manifest) continues
// the run bit-exactly versus an uninterrupted reference, on all three
// distributed solvers. The crash itself is exercised here with a real fork +
// SIGKILL child (bench_durability sweeps many kill points; this suite proves
// the mechanism).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bte/chaos_campaign.hpp"
#include "bte/multi_gpu_solver.hpp"
#include "bte/partitioned_solver.hpp"
#include "bte/resilience.hpp"
#include "runtime/cancel.hpp"
#include "runtime/chaos.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/fault.hpp"
#include "runtime/manifest.hpp"
#include "runtime/memory.hpp"
#include "runtime/simgpu.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#define FINCH_HAVE_FORK 1
#endif

using namespace finch;
using namespace finch::bte;

namespace {

BteScenario tiny_scenario() {
  BteScenario s;
  s.nx = 12;
  s.ny = 10;
  s.lx = s.ly = 50e-6;
  s.hot_w = 20e-6;
  s.ndirs = 8;
  s.nbands = 6;
  s.dt = 1e-12;
  return s;
}

std::shared_ptr<const BtePhysics> tiny_physics() {
  const BteScenario s = tiny_scenario();
  return std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

// Fresh cwd-relative directory for one test's durable store (ctest runs in
// the build tree; stale files from a previous run are removed so retention
// assertions see only this run's generations).
std::string fresh_dir(const std::string& name) {
  const std::string dir = "durability_" + name;
#if defined(__unix__) || defined(__APPLE__)
  ::mkdir(dir.c_str(), 0755);
#endif
  for (int seq = 0; seq < 64; ++seq)
    std::remove((dir + "/checkpoint_" + std::to_string(seq) + ".bin").c_str());
  std::remove((dir + "/checkpoint.bin").c_str());
  std::remove((dir + "/manifest.json").c_str());
  return dir;
}

ResilienceOptions durable_options(const std::string& dir, int interval = 2) {
  ResilienceOptions opt;
  opt.checkpoint.interval = interval;
  opt.durable.dir = dir;
  return opt;
}

rt::Snapshot tiny_snapshot(int64_t step) {
  rt::Snapshot snap;
  snap.step = step;
  snap.add("I", std::vector<double>{1.0, 2.0, 3.0 + static_cast<double>(step)});
  snap.add("T", std::vector<double>{300.0, 301.0});
  return snap;
}

}  // namespace

// ---- fault taxonomy (satellite: exhaustiveness regression) ------------------

// Every FaultKind must land in exactly one class: transient (none of the four
// predicates), permanent, silent, performance, or resource. The classifier in
// fault.cpp is a default-less switch, so *adding* a kind without classifying
// it fails to compile; this test closes the other gap — a kind classified
// into two classes, or a name collision.
TEST(Durability, FaultTaxonomyIsExhaustive) {
  std::vector<std::string> names;
  int resource = 0;
  for (int k = 0; k < rt::kNumFaultKinds; ++k) {
    const auto kind = static_cast<rt::FaultKind>(k);
    const int classes = (rt::fault_is_permanent(kind) ? 1 : 0) +
                        (rt::fault_is_silent(kind) ? 1 : 0) +
                        (rt::fault_is_performance(kind) ? 1 : 0) +
                        (rt::fault_is_resource(kind) ? 1 : 0);
    EXPECT_LE(classes, 1) << "kind " << k << " classified into " << classes << " classes";
    resource += rt::fault_is_resource(kind) ? 1 : 0;
    const std::string name = rt::fault_kind_name(kind);
    EXPECT_NE(name, "unknown-fault") << "kind " << k << " has no name";
    for (const std::string& seen : names) EXPECT_NE(name, seen);
    names.push_back(name);
    EXPECT_EQ(rt::fault_kind_from_name(name), kind) << name;
  }
  EXPECT_EQ(resource, 2);  // AllocFailure + MemoryPressure
  EXPECT_TRUE(rt::fault_is_resource(rt::FaultKind::AllocFailure));
  EXPECT_TRUE(rt::fault_is_resource(rt::FaultKind::MemoryPressure));
}

// The chaos generator's menus expose the resource class on all three solvers,
// and a resource-only schedule counts as one distinct class.
TEST(Durability, ResourceClassIsInEveryChaosMenu) {
  for (const char* solver : {"cell", "band", "mgpu"}) {
    bool has_resource = false;
    for (const rt::ChaosMenuEntry& e : rt::ChaosEngine::site_menu(solver))
      has_resource = has_resource || rt::fault_is_resource(e.kind);
    EXPECT_TRUE(has_resource) << solver;
  }
  rt::ChaosSchedule sched;
  sched.faults = {{rt::FaultKind::AllocFailure, "cell-mem", 0, 1, 1},
                  {rt::FaultKind::MemoryPressure, "cell-mem", 1, 1, 1}};
  EXPECT_EQ(sched.num_classes(), 1);
}

// ---- manifest serialization -------------------------------------------------

TEST(Manifest, RoundTripsAllFields) {
  rt::RunManifest m;
  m.config_hash = 0x1234abcd5678ef01ULL;
  m.injector_seed = 77;
  m.solver = "cell";
  m.nparts = 3;
  m.last_step = 42;
  m.saves = 7;
  m.checkpoints = {"d/checkpoint_7.bin", "d/checkpoint_6.bin"};
  m.injector_counters = {{2, "halo", 120, 3}, {12, "cell-mem", 40, 1}};
  m.injector_events = {{rt::FaultKind::DroppedMessage, "halo", 17},
                       {rt::FaultKind::AllocFailure, "cell-mem", 9}};
  m.cancel_reason = "deadline: steps";

  const rt::RunManifest back = rt::manifest_from_json(rt::manifest_to_json(m));
  EXPECT_EQ(back.config_hash, m.config_hash);
  EXPECT_EQ(back.injector_seed, m.injector_seed);
  EXPECT_EQ(back.solver, m.solver);
  EXPECT_EQ(back.nparts, m.nparts);
  EXPECT_EQ(back.last_step, m.last_step);
  EXPECT_EQ(back.saves, m.saves);
  EXPECT_EQ(back.checkpoints, m.checkpoints);
  ASSERT_EQ(back.injector_counters.size(), 2u);
  EXPECT_EQ(back.injector_counters[0].kind, 2);
  EXPECT_EQ(back.injector_counters[0].site, "halo");
  EXPECT_EQ(back.injector_counters[0].consulted, 120);
  EXPECT_EQ(back.injector_counters[0].fired, 3);
  ASSERT_EQ(back.injector_events.size(), 2u);
  EXPECT_EQ(back.injector_events[1].kind, rt::FaultKind::AllocFailure);
  EXPECT_EQ(back.injector_events[1].site, "cell-mem");
  EXPECT_EQ(back.injector_events[1].event_index, 9);
  EXPECT_EQ(back.cancel_reason, m.cancel_reason);
}

// Negative paths (satellite): truncation, corruption and unreadable bodies
// each surface as a *named* CheckpointError, never a half-parsed manifest.
TEST(Manifest, TruncatedTextIsANamedError) {
  rt::RunManifest m;
  m.solver = "band";
  const std::string text = rt::manifest_to_json(m);
  const std::string truncated = text.substr(0, text.rfind("#fnv1a:"));
  try {
    rt::manifest_from_json(truncated);
    FAIL() << "truncated manifest parsed";
  } catch (const rt::CheckpointError& err) {
    EXPECT_NE(std::string(err.what()).find("truncated"), std::string::npos) << err.what();
  }
}

TEST(Manifest, FlippedByteIsAChecksumMismatch) {
  rt::RunManifest m;
  m.solver = "cell";
  m.last_step = 10;
  std::string text = rt::manifest_to_json(m);
  const size_t pos = text.find("\"cell\"");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 1] = 'k';
  try {
    rt::manifest_from_json(text);
    FAIL() << "corrupted manifest parsed";
  } catch (const rt::CheckpointError& err) {
    EXPECT_NE(std::string(err.what()).find("checksum mismatch"), std::string::npos) << err.what();
  }
}

TEST(Manifest, GarbageBodyWithValidChecksumIsUnreadable) {
  // A correct trailer over a non-manifest body: the strict parser, not the
  // checksum, must reject it.
  rt::RunManifest m;
  const std::string good = rt::manifest_to_json(m);
  const std::string trailer = good.substr(good.rfind("#fnv1a:"));
  (void)trailer;
  const std::string body = "{\"not\": \"a manifest\"}\n";
  std::vector<std::byte> bytes(body.size());
  for (size_t i = 0; i < body.size(); ++i) bytes[i] = static_cast<std::byte>(body[i]);
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(rt::fnv1a64(bytes)));
  const std::string text = body + "#fnv1a:" + hex + "\n";
  try {
    rt::manifest_from_json(text);
    FAIL() << "garbage manifest parsed";
  } catch (const rt::CheckpointError& err) {
    EXPECT_NE(std::string(err.what()).find("unreadable"), std::string::npos) << err.what();
  }
}

TEST(Manifest, MissingFileIsANamedError) {
  EXPECT_THROW(rt::read_manifest("durability_nonexistent/manifest.json"), rt::CheckpointError);
}

// ---- durable checkpoint store -----------------------------------------------

TEST(DurableStore, RetainsNewestGenerationsAndPrunesBeyondRetention) {
  const std::string dir = fresh_dir("store_retention");
  rt::CheckpointStore store(dir, 2);
  store.save(tiny_snapshot(1));
  store.save(tiny_snapshot(2));
  store.save(tiny_snapshot(3));
  ASSERT_EQ(store.disk_paths().size(), 2u);
  EXPECT_EQ(store.disk_paths()[0], dir + "/checkpoint_3.bin");
  EXPECT_EQ(store.disk_paths()[1], dir + "/checkpoint_2.bin");
  EXPECT_EQ(rt::CheckpointStore::read_file(store.disk_paths()[0]).step, 3);
  EXPECT_EQ(rt::CheckpointStore::read_file(store.disk_paths()[1]).step, 2);
  // The pruned oldest generation is gone.
  EXPECT_THROW(rt::CheckpointStore::read_file(dir + "/checkpoint_1.bin"), rt::CheckpointError);
}

TEST(DurableStore, ReliefsFreeMemoryOnlyWhenDiskBacksIt) {
  // In-memory-only store: dropping the previous generation would destroy the
  // only fallback, so the relief must refuse (return 0).
  rt::CheckpointStore memory_only;
  memory_only.save(tiny_snapshot(1));
  memory_only.save(tiny_snapshot(2));
  EXPECT_EQ(memory_only.drop_previous_generation(), 0);
  EXPECT_EQ(memory_only.spill(), 0);
  EXPECT_EQ(memory_only.generations(), 2);

  const std::string dir = fresh_dir("store_relief");
  rt::CheckpointStore durable(dir, 2);
  durable.save(tiny_snapshot(1));
  durable.save(tiny_snapshot(2));
  EXPECT_GT(durable.drop_previous_generation(), 0);
  EXPECT_GT(durable.spill(), 0);
  // Both generations survive the reliefs — re-read from their files.
  EXPECT_EQ(durable.generations(), 2);
  EXPECT_EQ(durable.load(0).step, 2);
  EXPECT_EQ(durable.load(1).step, 1);
}

// ---- memory budget ----------------------------------------------------------

TEST(MemoryBudget, RunsReliefChainBeforeFailingAnAllocation) {
  rt::MemoryBudget budget(1000);
  EXPECT_TRUE(budget.try_reserve(900));
  EXPECT_FALSE(budget.try_reserve(200));  // no reliefs registered
  EXPECT_EQ(budget.in_use(), 900);

  int64_t stash = 500;
  budget.add_relief("stash", [&stash] {
    const int64_t freed = stash;
    stash = 0;
    return freed;
  });
  EXPECT_TRUE(budget.try_reserve(200));  // relief freed 500
  EXPECT_EQ(stash, 0);
  EXPECT_EQ(budget.in_use(), 600);
  EXPECT_EQ(budget.reliefs(), 1);
  EXPECT_EQ(budget.relieved_bytes(), 500);
  budget.release(600);
  EXPECT_EQ(budget.in_use(), 0);
}

TEST(MemoryBudget, SpikeTransientlyShrinksCapacityOnce) {
  rt::MemoryBudget budget(1000);
  int relief_runs = 0;
  budget.add_relief("count", [&relief_runs] {
    relief_runs += 1;
    return int64_t{400};
  });
  EXPECT_TRUE(budget.try_reserve(600));
  budget.spike(0.5);  // effective capacity 500 for the next admission
  EXPECT_TRUE(budget.try_reserve(100));
  EXPECT_EQ(relief_runs, 1);  // 600 + 100 > 500 forced one relief
  // The spike was consumed: full capacity is back.
  EXPECT_TRUE(budget.try_reserve(300));
  EXPECT_EQ(relief_runs, 1);
}

// ---- SimGpu resource faults -------------------------------------------------

TEST(SimGpuResource, AllocationsReserveAndReleaseAgainstTheBudget) {
  rt::SimGpu gpu(rt::GpuSpec::a6000());
  rt::MemoryBudget budget(64 * 8);
  gpu.set_memory_budget(&budget);
  {
    rt::DeviceBuffer buf = gpu.allocate(64);
    EXPECT_EQ(budget.in_use(), 64 * 8);
    EXPECT_THROW(gpu.allocate(1), rt::TransientFault);  // over budget, no reliefs
    EXPECT_EQ(gpu.counters().alloc_failures, 0);        // fatal path, not a fault fire
  }
  EXPECT_EQ(budget.in_use(), 0);  // buffer destruction released the reservation
  EXPECT_EQ(budget.peak(), 64 * 8);
}

TEST(SimGpuResource, InjectedResourceFaultsAreCountedAndRelieved) {
  rt::SimGpu gpu(rt::GpuSpec::a6000());
  rt::MemoryBudget budget(100 * 8);
  gpu.set_memory_budget(&budget);
  int64_t stash = 50 * 8;
  budget.add_relief("stash", [&stash] {
    const int64_t freed = stash;
    stash = 0;
    return freed;
  });
  rt::FaultInjector injector(7);
  injector.set_policy(rt::FaultKind::AllocFailure, {.probability = 0, .first_event = 0, .every = 1});
  gpu.set_fault_injector(&injector);
  rt::DeviceBuffer big = gpu.allocate(90);  // fills most of the budget
  EXPECT_EQ(gpu.counters().alloc_failures, 1);
  // Second allocation would overflow; the injected failure already ran the
  // relief chain, so the retry fits.
  rt::DeviceBuffer more = gpu.allocate(20);
  EXPECT_EQ(gpu.counters().alloc_failures, 2);
  EXPECT_EQ(stash, 0);
  EXPECT_GE(budget.reliefs(), 1);
}

// ---- cancel token -----------------------------------------------------------

TEST(CancelToken, RequestAndDeadlinesDrainWithNamedReasons) {
  rt::CancelToken cancel;
  EXPECT_FALSE(cancel.should_drain(100, 1e3));
  cancel.set_step_deadline(50);
  EXPECT_TRUE(cancel.should_drain(50, 0.0));
  EXPECT_EQ(cancel.drain_reason(50, 0.0), "deadline: steps");
  EXPECT_FALSE(cancel.should_drain(49, 0.0));

  rt::CancelToken timed;
  timed.set_virtual_deadline(1.5);
  EXPECT_TRUE(timed.should_drain(0, 2.0));
  EXPECT_EQ(timed.drain_reason(0, 2.0), "deadline: virtual-time");

  rt::CancelToken requested;
  requested.request("operator said so");
  EXPECT_TRUE(requested.should_drain(0, 0.0));
  EXPECT_EQ(requested.drain_reason(0, 0.0), "operator said so");
}

// ---- durable run + resume: bit-exact continuation ---------------------------

// A drained (cancelled) cell run resumed in a fresh solver matches the
// uninterrupted reference bit for bit, with the injector's draw sequence
// continuing across the restart through the manifest's counter state.
TEST(DurableResume, CellCancelDrainThenResumeIsBitExact) {
  const auto scen = tiny_scenario();
  const auto phys = tiny_physics();
  const int nsteps = 12;

  const auto make_injector = [] {
    rt::FaultInjector inj(21);
    inj.set_policy(rt::FaultKind::DroppedMessage, {.probability = 0, .first_event = 3, .every = 17});
    inj.set_policy(rt::FaultKind::MemoryPressure, {.probability = 0, .first_event = 2, .every = 5});
    return inj;
  };

  // Uninterrupted reference.
  rt::FaultInjector ref_inj = make_injector();
  CellPartitionedSolver ref(scen, phys, 3);
  ResilienceOptions ref_opt;
  ref_opt.checkpoint.interval = 2;
  ref_opt.injector = &ref_inj;
  ref.enable_resilience(ref_opt);
  ref.run(nsteps);

  // Interrupted: drain on a step deadline, then resume in a fresh solver.
  const std::string dir = fresh_dir("cell_cancel");
  rt::FaultInjector inj = make_injector();
  rt::CancelToken cancel;
  cancel.set_step_deadline(5);
  {
    CellPartitionedSolver first(scen, phys, 3);
    ResilienceOptions opt = durable_options(dir);
    opt.injector = &inj;
    opt.cancel = &cancel;
    first.enable_resilience(opt);
    first.run(nsteps);
    EXPECT_EQ(first.step_index(), 5);
    EXPECT_EQ(first.resilience_stats().cancel_drains, 1);
  }
  const rt::RunManifest manifest = rt::read_manifest(dir + "/manifest.json");
  EXPECT_EQ(manifest.solver, "cell");
  EXPECT_EQ(manifest.last_step, 5);
  EXPECT_EQ(manifest.cancel_reason, "deadline: steps");

  rt::FaultInjector resumed_inj(manifest.injector_seed);
  resumed_inj.set_policy(rt::FaultKind::DroppedMessage,
                         {.probability = 0, .first_event = 3, .every = 17});
  resumed_inj.set_policy(rt::FaultKind::MemoryPressure,
                         {.probability = 0, .first_event = 2, .every = 5});
  CellPartitionedSolver second(scen, phys, 3);
  ResilienceOptions opt = durable_options(dir);
  opt.injector = &resumed_inj;
  second.resume_from(manifest, opt);
  EXPECT_EQ(second.step_index(), 5);
  EXPECT_EQ(second.resilience_stats().resumes, 1);
  second.run(nsteps - static_cast<int>(second.step_index()));

  EXPECT_TRUE(bitwise_equal(second.gather_temperature(), ref.gather_temperature()));
  EXPECT_TRUE(bitwise_equal(second.gather_intensity(), ref.gather_intensity()));
}

// Same bit-exactness property through the band and multi-GPU solvers (plain
// abandon-and-resume, as after a crash whose manifest survived).
TEST(DurableResume, BandAbandonedRunResumesBitExact) {
  const auto scen = tiny_scenario();
  const auto phys = tiny_physics();
  const int nsteps = 10;

  BandPartitionedSolver ref(scen, phys, 3);
  ResilienceOptions ref_opt;
  ref_opt.checkpoint.interval = 2;
  ref.enable_resilience(ref_opt);
  ref.run(nsteps);

  const std::string dir = fresh_dir("band_abandon");
  {
    BandPartitionedSolver first(scen, phys, 3);
    first.enable_resilience(durable_options(dir));
    first.run(6);  // abandoned: the process "dies" here with step 6 checkpointed
  }
  const rt::RunManifest manifest = rt::read_manifest(dir + "/manifest.json");
  EXPECT_EQ(manifest.solver, "band");
  EXPECT_EQ(manifest.last_step, 6);
  EXPECT_TRUE(manifest.cancel_reason.empty());

  BandPartitionedSolver second(scen, phys, 3);
  second.resume_from(manifest, durable_options(dir));
  EXPECT_EQ(second.step_index(), 6);
  second.run(nsteps - static_cast<int>(second.step_index()));
  EXPECT_TRUE(bitwise_equal(second.temperature(), ref.temperature()));
  EXPECT_TRUE(bitwise_equal(second.gather_intensity(), ref.gather_intensity()));
}

TEST(DurableResume, MultiGpuResumesBitExactUnderResourceFaults) {
  const auto scen = tiny_scenario();
  const auto phys = tiny_physics();
  const int nsteps = 10;

  const auto arm = [](rt::FaultInjector& inj) {
    inj.set_policy(rt::FaultKind::AllocFailure, {.probability = 0, .first_event = 1, .every = 4});
    inj.set_policy(rt::FaultKind::MemoryPressure, {.probability = 0, .first_event = 2, .every = 3});
  };
  rt::FaultInjector ref_inj(33);
  arm(ref_inj);
  rt::MemoryBudget ref_budget(int64_t{64} << 20);
  MultiGpuSolver ref(scen, phys, 2);
  ResilienceOptions ref_opt;
  ref_opt.checkpoint.interval = 2;
  ref_opt.injector = &ref_inj;
  ref_opt.memory = &ref_budget;
  ref.enable_resilience(ref_opt);
  ref.run(nsteps);
  EXPECT_GT(ref.resilience_stats().alloc_failures, 0);
  EXPECT_GT(ref.resilience_stats().pressure_events, 0);

  const std::string dir = fresh_dir("mgpu_resume");
  rt::FaultInjector inj(33);
  arm(inj);
  rt::MemoryBudget budget(int64_t{64} << 20);
  {
    MultiGpuSolver first(scen, phys, 2);
    ResilienceOptions opt = durable_options(dir);
    opt.injector = &inj;
    opt.memory = &budget;
    first.enable_resilience(opt);
    first.run(6);
  }
  const rt::RunManifest manifest = rt::read_manifest(dir + "/manifest.json");
  EXPECT_EQ(manifest.solver, "mgpu");

  rt::FaultInjector resumed_inj(manifest.injector_seed);
  arm(resumed_inj);
  rt::MemoryBudget resumed_budget(int64_t{64} << 20);
  MultiGpuSolver second(scen, phys, 2);
  ResilienceOptions opt = durable_options(dir);
  opt.injector = &resumed_inj;
  opt.memory = &resumed_budget;
  second.resume_from(manifest, opt);
  second.run(nsteps - static_cast<int>(second.step_index()));
  EXPECT_TRUE(bitwise_equal(second.temperature(), ref.temperature()));
  EXPECT_TRUE(bitwise_equal(second.gather_intensity(), ref.gather_intensity()));
}

// ---- resume negative paths --------------------------------------------------

TEST(DurableResume, ManifestForTheWrongSolverOrConfigIsRefused) {
  const auto scen = tiny_scenario();
  const auto phys = tiny_physics();
  const std::string dir = fresh_dir("resume_mismatch");
  {
    CellPartitionedSolver s(scen, phys, 2);
    s.enable_resilience(durable_options(dir));
    s.run(4);
  }
  const rt::RunManifest manifest = rt::read_manifest(dir + "/manifest.json");

  BandPartitionedSolver wrong_solver(scen, phys, 2);
  EXPECT_THROW(wrong_solver.resume_from(manifest, durable_options(dir)), rt::CheckpointError);

  BteScenario other = scen;
  other.nx = 10;
  CellPartitionedSolver wrong_config(other, phys, 2);
  EXPECT_THROW(wrong_config.resume_from(manifest, durable_options(dir)), rt::CheckpointError);
}

TEST(DurableResume, MissingNewestGenerationFallsBackCorruptAllFails) {
  const auto scen = tiny_scenario();
  const auto phys = tiny_physics();
  const std::string dir = fresh_dir("resume_fallback");
  {
    CellPartitionedSolver s(scen, phys, 2);
    s.enable_resilience(durable_options(dir));
    s.run(6);  // generations at steps 6 (newest) and 4
  }
  rt::RunManifest manifest = rt::read_manifest(dir + "/manifest.json");
  ASSERT_EQ(manifest.checkpoints.size(), 2u);
  EXPECT_EQ(manifest.last_step, 6);

  // Newest generation file lost: resume falls back to the older one.
  std::remove(manifest.checkpoints[0].c_str());
  {
    CellPartitionedSolver s(scen, phys, 2);
    s.resume_from(manifest, durable_options(dir));
    EXPECT_EQ(s.step_index(), 4);
    EXPECT_GE(s.resilience_stats().ckpt_generation_fallbacks, 1);
  }

  // Every recorded generation unreadable: a named error, not a silent restart.
  std::remove(manifest.checkpoints[1].c_str());
  {
    CellPartitionedSolver s(scen, phys, 2);
    EXPECT_THROW(s.resume_from(manifest, durable_options(dir)), rt::CheckpointError);
  }
}

namespace {
// Rewrites `path` keeping only the first half of its bytes — a torn copy, a
// partial scp, a filesystem that lost the tail. Distinct from deletion: the
// file still exists and opens fine, only deserialization can reject it.
void truncate_file_to_half(const std::string& path) {
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path;
    data.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_GT(data.size(), 1u);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
}
}  // namespace

TEST(DurableResume, TruncatedNewestGenerationFallsBack) {
  const auto scen = tiny_scenario();
  const auto phys = tiny_physics();
  const int nsteps = 8;

  CellPartitionedSolver ref(scen, phys, 2);
  ResilienceOptions ref_opt;
  ref_opt.checkpoint.interval = 2;
  ref.enable_resilience(ref_opt);
  ref.run(nsteps);

  const std::string dir = fresh_dir("resume_truncated");
  {
    CellPartitionedSolver s(scen, phys, 2);
    s.enable_resilience(durable_options(dir));
    s.run(6);  // generations at steps 6 (newest) and 4
  }
  rt::RunManifest manifest = rt::read_manifest(dir + "/manifest.json");
  ASSERT_EQ(manifest.checkpoints.size(), 2u);

  // Newest generation torn (truncated, not deleted): resume must reject it
  // by content and fall back to the older generation, then finish bit-exact.
  truncate_file_to_half(manifest.checkpoints[0]);
  CellPartitionedSolver resumed(scen, phys, 2);
  resumed.resume_from(manifest, durable_options(dir));
  EXPECT_EQ(resumed.step_index(), 4);
  EXPECT_GE(resumed.resilience_stats().ckpt_generation_fallbacks, 1);
  resumed.run(nsteps - static_cast<int>(resumed.step_index()));
  EXPECT_TRUE(bitwise_equal(resumed.gather_temperature(), ref.gather_temperature()));
  EXPECT_TRUE(bitwise_equal(resumed.gather_intensity(), ref.gather_intensity()));
}

TEST(DurableResume, ResumedRunAdoptsOlderGenerationsAsFallback) {
  const auto scen = tiny_scenario();
  const auto phys = tiny_physics();
  const std::string dir = fresh_dir("resume_adopt");
  {
    CellPartitionedSolver s(scen, phys, 2);
    s.enable_resilience(durable_options(dir));
    s.run(6);
  }
  const rt::RunManifest first = rt::read_manifest(dir + "/manifest.json");
  ASSERT_EQ(first.checkpoints.size(), 2u);

  // Resume and immediately "crash" (drop the solver). The resume itself
  // commits a fresh checkpoint + manifest; the ISSUE-8 fragility was that
  // this manifest recorded ONLY the new generation, orphaning the files the
  // first manifest still had — adoption must keep an older one as fallback.
  {
    CellPartitionedSolver s(scen, phys, 2);
    s.resume_from(first, durable_options(dir));
    EXPECT_EQ(s.step_index(), 6);
  }
  rt::RunManifest second = rt::read_manifest(dir + "/manifest.json");
  ASSERT_EQ(second.checkpoints.size(), 2u)
      << "post-resume manifest forgot the adopted generation";
  EXPECT_NE(second.checkpoints[0], second.checkpoints[1]);

  // Second crash with the newest generation torn: the adopted fallback is
  // what makes this resumable at all.
  truncate_file_to_half(second.checkpoints[0]);
  CellPartitionedSolver resumed(scen, phys, 2);
  resumed.resume_from(second, durable_options(dir));
  EXPECT_EQ(resumed.step_index(), 6);
  EXPECT_GE(resumed.resilience_stats().ckpt_generation_fallbacks, 1);
}

TEST(DurableResume, AdoptDiskPathsSkipsDamagedCandidates) {
  rt::CheckpointStore store("", 2);
  // Neither path exists; adoption must validate by content and adopt nothing.
  EXPECT_EQ(store.adopt_disk_paths({"durability_missing_a.bin", "durability_missing_b.bin"}), 0);
  EXPECT_TRUE(store.disk_paths().empty());
}

TEST(DurableResume, OptionValidationCoversDurableKnobs) {
  const auto scen = tiny_scenario();
  const auto phys = tiny_physics();
  CellPartitionedSolver s(scen, phys, 2);

  ResilienceOptions bad_generations = durable_options("x");
  bad_generations.durable.disk_generations = 0;
  EXPECT_THROW(s.enable_resilience(bad_generations), std::invalid_argument);

  ResilienceOptions no_checkpoints = durable_options("x");
  no_checkpoints.checkpoint.interval = 0;
  no_checkpoints.max_rollbacks = 0;
  EXPECT_THROW(s.enable_resilience(no_checkpoints), std::invalid_argument);

  const rt::RunManifest manifest;  // never mind the contents:
  ResilienceOptions no_dir;        // resume without a durable dir is refused first
  EXPECT_THROW(s.resume_from(manifest, no_dir), std::invalid_argument);
}

// ---- chaos: resource class composes with the rest ---------------------------

TEST(DurabilityChaos, ResourceClassScheduleSurvivesTheOracle) {
  ChaosCampaign campaign(tiny_scenario(), tiny_physics(), ChaosDefense{});
  rt::ChaosSchedule sched;
  sched.seed = 99;
  sched.solver = "cell";
  sched.nparts = 3;
  sched.nsteps = 10;
  sched.faults = {{rt::FaultKind::AllocFailure, "cell-mem", 2, 1, 2},
                  {rt::FaultKind::MemoryPressure, "cell-mem", 4, 2, 2},
                  {rt::FaultKind::DroppedMessage, "halo", 10, 5, 2}};
  const ChaosOutcome out = campaign.run_schedule(sched);
  EXPECT_TRUE(out.ok()) << out.detail;
  EXPECT_GT(out.stats.alloc_failures, 0);
  EXPECT_GT(out.stats.pressure_events, 0);
}

// ---- crash harness: SIGKILL inside the checkpoint .tmp-write window ---------

#ifdef FINCH_HAVE_FORK
// The child is killed while the third checkpoint's `.tmp` sibling is being
// written (rename still pending). The commit protocol guarantees the previous
// generation and the previous manifest are untouched, so the parent resumes
// from the prior step and finishes bit-exactly (satellite: the mid-write
// window is the one a naive in-place writer corrupts).
TEST(CrashHarness, SigkillDuringTmpWriteLeavesPriorGenerationResumable) {
  const auto scen = tiny_scenario();
  const auto phys = tiny_physics();
  const int nsteps = 8;

  CellPartitionedSolver ref(scen, phys, 2);
  ResilienceOptions ref_opt;
  ref_opt.checkpoint.interval = 2;
  ref.enable_resilience(ref_opt);
  ref.run(nsteps);

  const std::string dir = fresh_dir("crash_tmpwrite");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: SIGKILL from inside the .tmp-write window of the third
    // checkpoint image (enable_resilience writes #1 at step 0, then steps 2
    // and 4 write #2 and #3).
    static int checkpoint_tmp_writes = 0;
    rt::set_checkpoint_commit_hook([](const std::string& path, rt::CommitPhase phase) {
      if (phase != rt::CommitPhase::AfterTmpWrite) return;
      if (path.find("checkpoint_") == std::string::npos) return;
      if (++checkpoint_tmp_writes == 3) ::raise(SIGKILL);
    });
    CellPartitionedSolver victim(scen, phys, 2);
    victim.enable_resilience(durable_options(dir));
    victim.run(nsteps);
    ::_exit(42);  // unreachable when the kill landed
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with " << WEXITSTATUS(status);
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The manifest on disk is the one from the second checkpoint (step 2), its
  // newest generation is intact, and the torn write left no readable trace.
  const rt::RunManifest manifest = rt::read_manifest(dir + "/manifest.json");
  EXPECT_EQ(manifest.last_step, 2);
  ASSERT_FALSE(manifest.checkpoints.empty());
  EXPECT_EQ(rt::CheckpointStore::read_file(manifest.checkpoints[0]).step, 2);

  CellPartitionedSolver resumed(scen, phys, 2);
  resumed.resume_from(manifest, durable_options(dir));
  EXPECT_EQ(resumed.step_index(), 2);
  resumed.run(nsteps - static_cast<int>(resumed.step_index()));
  EXPECT_TRUE(bitwise_equal(resumed.gather_temperature(), ref.gather_temperature()));
  EXPECT_TRUE(bitwise_equal(resumed.gather_intensity(), ref.gather_intensity()));
}
#endif  // FINCH_HAVE_FORK
