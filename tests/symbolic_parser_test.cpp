// Parser tests: tokenization, precedence, entity resolution, vector literals,
// calls, comparisons and error reporting.
#include <gtest/gtest.h>

#include "core/symbolic/parser.hpp"
#include "core/symbolic/printer.hpp"
#include "core/symbolic/simplify.hpp"

namespace sym = finch::sym;

namespace {

sym::EntityTable bte_table() {
  sym::EntityTable t;
  t.declare_index("d", 1, 20);
  t.declare_index("b", 1, 55);
  t.declare({"I", sym::EntityKind::Variable, 1, {"d", "b"}});
  t.declare({"Io", sym::EntityKind::Variable, 1, {"b"}});
  t.declare({"beta", sym::EntityKind::Variable, 1, {"b"}});
  t.declare({"Sx", sym::EntityKind::Coefficient, 1, {"d"}});
  t.declare({"Sy", sym::EntityKind::Coefficient, 1, {"d"}});
  t.declare({"vg", sym::EntityKind::Coefficient, 1, {"b"}});
  t.declare({"u", sym::EntityKind::Variable, 1, {}});
  t.declare({"k", sym::EntityKind::Coefficient, 1, {}});
  t.declare({"bvec", sym::EntityKind::Coefficient, 2, {}});
  return t;
}

std::string parse_str(const std::string& s) {
  auto table = bte_table();
  return sym::to_string(sym::simplify(sym::parse_expression(s, table)));
}

}  // namespace

TEST(Parser, Precedence) {
  EXPECT_EQ(parse_str("1 + 2 * 3"), "7");
  EXPECT_EQ(parse_str("2 * k + 1"), "2*_k_1 + 1");
  EXPECT_EQ(parse_str("(1 + 2) * 3"), "9");
  EXPECT_EQ(parse_str("2 ^ 3 ^ 1"), "8");
  EXPECT_EQ(parse_str("-2 ^ 2"), "-4");  // unary minus binds looser than ^
}

TEST(Parser, Division) {
  EXPECT_EQ(parse_str("u / k"), "_u_1/_k_1");
  EXPECT_EQ(parse_str("6 / 3"), "2");
}

TEST(Parser, EntityResolution) {
  EXPECT_EQ(parse_str("-k*u"), "-_k_1*_u_1");
  EXPECT_EQ(parse_str("I[d,b]"), "_I_1[d,b]");
  EXPECT_EQ(parse_str("Io[b] - I[d,b]"), "_Io_1[b] - _I_1[d,b]");
}

TEST(Parser, IntegerIndices) {
  EXPECT_EQ(parse_str("I[1,2]"), "_I_1[1,2]");
}

TEST(Parser, VectorLiteral) {
  EXPECT_EQ(parse_str("[Sx[d]; Sy[d]]"), "[_Sx_1[d]; _Sy_1[d]]");
}

TEST(Parser, CallsArePreserved) {
  EXPECT_EQ(parse_str("surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))"),
            "surface(_vg_1[b]*upwind([_Sx_1[d]; _Sy_1[d]], _I_1[d,b]))");
}

TEST(Parser, Comparisons) {
  EXPECT_EQ(parse_str("conditional(u > 0, u, k)"), "conditional(_u_1 > 0, _u_1, _k_1)");
  EXPECT_EQ(parse_str("conditional(u >= k, 1, 2)"), "conditional(_u_1 >= _k_1, 1, 2)");
}

TEST(Parser, FreeSymbolsPassThrough) {
  EXPECT_EQ(parse_str("dt * u"), "dt*_u_1");
  EXPECT_EQ(parse_str("normaldir"), "normaldir");
}

TEST(Parser, ScientificNotation) {
  EXPECT_EQ(parse_str("1e-12"), "1e-12");
  EXPECT_EQ(parse_str("2.5e3"), "2500");
}

TEST(Parser, UnaryChains) {
  EXPECT_EQ(parse_str("--u"), "_u_1");
  EXPECT_EQ(parse_str("-+-u"), "_u_1");
}

TEST(ParserErrors, MissingIndicesOnArrayEntity) {
  auto table = bte_table();
  EXPECT_THROW(sym::parse_expression("I + 1", table), sym::ParseError);
}

TEST(ParserErrors, UnknownIndexedIdentifier) {
  auto table = bte_table();
  EXPECT_THROW(sym::parse_expression("zz[d]", table), sym::ParseError);
}

TEST(ParserErrors, UnbalancedParens) {
  auto table = bte_table();
  EXPECT_THROW(sym::parse_expression("(u + k", table), sym::ParseError);
  EXPECT_THROW(sym::parse_expression("u + k)", table), sym::ParseError);
}

TEST(ParserErrors, BadCharacter) {
  auto table = bte_table();
  EXPECT_THROW(sym::parse_expression("u $ k", table), sym::ParseError);
}

TEST(ParserErrors, EmptyExpression) {
  auto table = bte_table();
  EXPECT_THROW(sym::parse_expression("", table), sym::ParseError);
}

// Golden caret diagnostics: the full what() renders the offending input with
// a '^' under the exact offset, so a user can see where their equation string
// broke without counting characters.
TEST(ParserErrors, CaretDiagnosticForBadCharacter) {
  auto table = bte_table();
  std::string what;
  try {
    sym::parse_expression("u $ k", table);
    FAIL() << "expected ParseError";
  } catch (const sym::ParseError& e) {
    what = e.what();
    EXPECT_EQ(e.position, 2u);
  }
  EXPECT_EQ(what,
            "unexpected character '$' (at offset 2)\n"
            "  u $ k\n"
            "    ^");
}

TEST(ParserErrors, CaretDiagnosticForTrailingInput) {
  auto table = bte_table();
  std::string what;
  try {
    sym::parse_expression("u + k)", table);
    FAIL() << "expected ParseError";
  } catch (const sym::ParseError& e) {
    what = e.what();
    EXPECT_EQ(e.position, 5u);
  }
  EXPECT_EQ(what,
            "trailing input (at offset 5)\n"
            "  u + k)\n"
            "       ^");
}

TEST(ParserErrors, CaretClampsAtEndOfInput) {
  auto table = bte_table();
  try {
    sym::parse_expression("(u + k", table);
    FAIL() << "expected ParseError";
  } catch (const sym::ParseError& e) {
    // Missing ')' points one past the last character; the caret clamps there
    // instead of running off the rendered line.
    EXPECT_EQ(std::string(e.what()),
              "expected ')' (at offset 6)\n"
              "  (u + k\n"
              "        ^");
  }
}

TEST(Parser, WhitespaceInsensitive) {
  EXPECT_EQ(parse_str("  -k  *\tu "), parse_str("-k*u"));
}

TEST(Parser, FullBteInput) {
  // The exact equation string from the paper's §III.B.
  EXPECT_EQ(parse_str("(Io[b] - I[d,b]) / beta[b] + surface(vg[b] * upwind([Sx[d];Sy[d]], I[d,b]))"),
            "(_Io_1[b] - _I_1[d,b])/_beta_1[b] + surface(_vg_1[b]*upwind([_Sx_1[d]; _Sy_1[d]], _I_1[d,b]))");
}
