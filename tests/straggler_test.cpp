// Fail-slow resilience: performance-fault taxonomy, straggler detection,
// deadline watchdog, speculative re-execution, and dynamic rebalancing.
//
// The invariant every test leans on: performance faults and their mitigations
// live entirely in the timing model — the numerics never change, so every
// mitigated run must match the serial DirectSolver bit-for-bit.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bte/direct_solver.hpp"
#include "bte/multi_gpu_solver.hpp"
#include "bte/partitioned_solver.hpp"
#include "bte/resilience.hpp"
#include "runtime/fault.hpp"
#include "runtime/simgpu.hpp"
#include "runtime/simmpi.hpp"
#include "runtime/straggler.hpp"

using namespace finch;
using namespace finch::bte;

namespace {

BteScenario tiny_scenario() {
  BteScenario s;
  s.nx = 16;
  s.ny = 12;
  s.lx = s.ly = 50e-6;
  s.hot_w = 20e-6;
  s.ndirs = 8;
  s.nbands = 8;
  s.dt = 1e-12;
  return s;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

rt::StragglerOptions armed_straggler() {
  rt::StragglerOptions so;
  so.enabled = true;
  return so;
}

}  // namespace

// ---- taxonomy ---------------------------------------------------------------

TEST(FaultTaxonomy, PerformanceFaultsAreNamedAndClassified) {
  EXPECT_STREQ(rt::fault_kind_name(rt::FaultKind::SlowRank), "slow-rank");
  EXPECT_STREQ(rt::fault_kind_name(rt::FaultKind::JitterKernel), "jitter-kernel");
  EXPECT_STREQ(rt::fault_kind_name(rt::FaultKind::HangExchange), "hang-exchange");
  for (const rt::FaultKind k : {rt::FaultKind::SlowRank, rt::FaultKind::JitterKernel,
                                rt::FaultKind::HangExchange, rt::FaultKind::StuckRank}) {
    EXPECT_TRUE(rt::fault_is_performance(k));
    EXPECT_FALSE(rt::fault_is_permanent(k));
    EXPECT_FALSE(rt::fault_is_silent(k));
  }
  EXPECT_FALSE(rt::fault_is_performance(rt::FaultKind::RankFailure));
  EXPECT_FALSE(rt::fault_is_performance(rt::FaultKind::BitFlipMessage));
}

TEST(FaultTaxonomy, InjectorPerformanceDrawsAreDeterministic) {
  rt::FaultInjector a(1234), b(1234);
  rt::FaultPolicy p;
  p.every = 2;
  a.set_policy(rt::FaultKind::JitterKernel, p);
  b.set_policy(rt::FaultKind::JitterKernel, p);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.should_fault(rt::FaultKind::JitterKernel, "k"),
              b.should_fault(rt::FaultKind::JitterKernel, "k"));
    const double ja = a.jitter_factor("k");
    EXPECT_EQ(ja, b.jitter_factor("k"));
    EXPECT_GE(ja, 1.0);
    EXPECT_LE(ja, 3.0);  // default jitter_max
  }
  EXPECT_EQ(a.slow_factor(), 4.0);
  EXPECT_EQ(a.hang_seconds(), 10e-3);
  a.set_slow_factor(8.0);
  EXPECT_EQ(a.slow_factor(), 8.0);
}

// ---- heartbeat suspicion ----------------------------------------------------

TEST(Heartbeat, ThreeStateVerdictSeparatesSlowFromDead) {
  const rt::HeartbeatModel hb;
  using V = rt::HeartbeatModel::Verdict;
  EXPECT_EQ(hb.classify(0), V::Alive);
  EXPECT_EQ(hb.classify(1), V::Suspect);
  EXPECT_EQ(hb.classify(2), V::Suspect);
  EXPECT_EQ(hb.classify(3), V::Dead);
  EXPECT_EQ(hb.classify(99), V::Dead);
}

TEST(Heartbeat, TwoXSlowRankIsSuspectNeverDead) {
  // Regression for the fail-slow gap: a 2x-slow rank stretches its heartbeat
  // gaps to look like one missed beat — Suspect, and never escalated to Dead.
  const rt::HeartbeatModel hb;
  EXPECT_EQ(hb.misses_for_slowdown(1.0), 0);
  EXPECT_EQ(hb.misses_for_slowdown(2.0), 1);
  EXPECT_EQ(hb.classify(hb.misses_for_slowdown(2.0)), rt::HeartbeatModel::Verdict::Suspect);
  EXPECT_NE(hb.classify(hb.misses_for_slowdown(2.0)), rt::HeartbeatModel::Verdict::Dead);
}

// ---- detector ---------------------------------------------------------------

TEST(StragglerDetector, EwmaSuspectChronicAndHelperSelection) {
  rt::StragglerOptions so = armed_straggler();
  rt::StragglerDetector d(4, so);
  const std::vector<double> even = {1.0, 1.0, 1.0, 1.0};
  d.observe(even);
  EXPECT_DOUBLE_EQ(d.fleet_median(), 1.0);
  for (int r = 0; r < 4; ++r) {
    EXPECT_FALSE(d.suspect(r));
    EXPECT_DOUBLE_EQ(d.slowdown(r), 1.0);
  }
  EXPECT_EQ(d.chronic_straggler(), -1);

  const std::vector<double> skew = {1.0, 1.0, 5.0, 1.0};
  d.observe(skew);  // rank 2 EWMA = 0.6*1 + 0.4*5 = 2.6 > 2 x median
  EXPECT_TRUE(d.suspect(2));
  EXPECT_FALSE(d.chronic(2));  // needs chronic_steps consecutive suspects
  d.observe(skew);
  d.observe(skew);
  EXPECT_TRUE(d.chronic(2));
  EXPECT_EQ(d.chronic_straggler(), 2);
  EXPECT_GT(d.slowdown(2), 2.0);
  const int32_t helper = d.least_loaded(2);
  EXPECT_GE(helper, 0);
  EXPECT_NE(helper, 2);

  d.resize(3);  // topology change: history restarts cold
  EXPECT_EQ(d.observations(), 0);
  EXPECT_EQ(d.chronic_straggler(), -1);
  EXPECT_THROW(d.observe(even), std::invalid_argument);  // 4 entries into 3 ranks
}

TEST(StragglerDetector, OneNoisyStepNeverTriggersMitigation) {
  // A scheduler preemption shows up as one huge sample, not a sustained
  // slowdown. Winsorizing at clip_ratio x the raw step median bounds how long
  // that one sample can keep the EWMA suspect, so it never reaches chronic.
  rt::StragglerDetector d(4, armed_straggler());
  const std::vector<double> even = {1.0, 1.0, 1.0, 1.0};
  const std::vector<double> spike = {1.0, 100.0, 1.0, 1.0};
  d.observe(even);
  d.observe(spike);  // clipped to 6x median: EWMA 0.6 + 0.4*6 = 3.0
  EXPECT_TRUE(d.suspect(1));
  EXPECT_NEAR(d.ewma(1), 3.0, 1e-12);    // the raw 100x never enters the filter
  EXPECT_EQ(d.chronic_straggler(), -1);  // one spike is noise, not a straggler
  d.observe(even);                       // 2.2: still suspect, streak 2 of 3
  EXPECT_EQ(d.chronic_straggler(), -1);
  d.observe(even);  // 1.72: below the line before the streak turns chronic
  EXPECT_FALSE(d.suspect(1));
  EXPECT_EQ(d.chronic_straggler(), -1);
}

// ---- BSP simulator: slow ranks, speculation, conservation -------------------

TEST(BspStraggler, SlowRankStretchesTheSuperstep) {
  rt::BspSimulator bsp(4);
  bsp.set_slow_rank(1, 4.0);
  EXPECT_EQ(bsp.slow_rank(), 1);
  const std::vector<double> sec = {1e-3, 1e-3, 1e-3, 1e-3};
  bsp.compute_step(sec);
  EXPECT_NEAR(bsp.elapsed(), 4e-3, 1e-12);
  EXPECT_EQ(bsp.slow_steps(), 1);
  EXPECT_NEAR(bsp.phases().total(), bsp.elapsed(), 1e-12);
}

TEST(BspStraggler, SpeculationFirstFinisherWinsAndConserves) {
  rt::BspSimulator bsp(4);
  bsp.set_straggler(armed_straggler());
  bsp.set_slow_rank(1, 4.0);
  bsp.arm_speculation(/*victim=*/1, /*helper=*/3);
  const std::vector<double> sec = {1e-3, 1e-3, 1e-3, 1e-3};
  bsp.compute_step(sec);
  // Victim would take 4 ms; the helper finishes its own 1 ms then re-runs the
  // victim's shard at the nominal 1 ms — the copy wins at 2 ms total.
  EXPECT_NEAR(bsp.elapsed(), 2e-3, 1e-12);
  EXPECT_NEAR(bsp.phases().speculation, 1e-3, 1e-12);
  EXPECT_NEAR(bsp.phases().compute, 1e-3, 1e-12);
  EXPECT_NEAR(bsp.phases().total(), bsp.elapsed(), 1e-12);
  // One-shot: the next step pays the full slowdown again.
  bsp.compute_step(sec);
  EXPECT_NEAR(bsp.elapsed(), 6e-3, 1e-12);
}

TEST(BspStraggler, RetireRankRemapsBookkeepingWithoutSuspicionCharge) {
  rt::BspSimulator bsp(4);
  bsp.set_straggler(armed_straggler());
  bsp.set_slow_rank(2, 4.0);
  bsp.retire_rank(2);  // draining the victim clears its sticky slow state
  EXPECT_EQ(bsp.nranks(), 3);
  EXPECT_EQ(bsp.slow_rank(), -1);
  EXPECT_EQ(bsp.retirements(), 1);
  EXPECT_EQ(bsp.evictions(), 0);
  EXPECT_DOUBLE_EQ(bsp.phases().recovery, 0.0);  // alive: no suspicion timeout
  bsp.set_slow_rank(2, 4.0);
  bsp.retire_rank(0);  // removing a lower rank shifts the sticky index down
  EXPECT_EQ(bsp.slow_rank(), 1);
  const double before = bsp.elapsed();
  bsp.charge_rebalance(1 << 20);
  EXPECT_GT(bsp.phases().rebalance, 0.0);
  EXPECT_NEAR(bsp.elapsed() - before, bsp.phases().rebalance, 1e-15);
}

TEST(BspStraggler, PhaseSumConservationUnderFaultSweep) {
  // Property: for any seed, with SlowRank + JitterKernel firing and the
  // defense armed, every second the clock advances lands in exactly one
  // accounted phase (fault_stall is a tagged subset of communication).
  for (const uint64_t seed : {1ULL, 7ULL, 31337ULL, 2026ULL, 424242ULL}) {
    rt::FaultInjector inj(seed);
    rt::FaultPolicy slow;
    slow.every = 5;
    inj.set_policy(rt::FaultKind::SlowRank, slow);
    rt::FaultPolicy jit;
    jit.every = 2;
    inj.set_policy(rt::FaultKind::JitterKernel, jit);
    rt::BspSimulator bsp(6);
    bsp.set_fault_injector(&inj);
    bsp.set_straggler(armed_straggler());
    const std::vector<double> sec(6, 1e-4);
    const std::vector<rt::Message> msgs = {{0, 1, 4096}, {2, 3, 8192}, {4, 5, 1024}};
    for (int step = 0; step < 20; ++step) {
      bsp.compute_step(sec);
      bsp.exchange(msgs);
      bsp.compute_step(sec, rt::BspSimulator::Phase::PostProcess);
      bsp.gather(2048);
    }
    EXPECT_NEAR(bsp.phases().total(), bsp.elapsed(), 1e-9 * bsp.elapsed())
        << "phase-sum conservation broke at seed " << seed;
    EXPECT_GT(bsp.slow_steps() + bsp.jitter_events(), 0) << "sweep injected nothing at " << seed;
  }
}

// ---- exchange watchdog ------------------------------------------------------

TEST(Watchdog, TransientHangPaysOneDeadlineNotTheFullStall) {
  rt::FaultInjector inj(5);
  rt::FaultPolicy hang;
  hang.every = 1;
  hang.max_injections = 1;
  inj.set_site_policy(rt::FaultKind::HangExchange, "exchange", hang);
  rt::BspSimulator bsp(4);
  bsp.set_fault_injector(&inj);
  bsp.set_straggler(armed_straggler());
  const std::vector<rt::Message> msgs = {{0, 1, 4096}};
  bsp.exchange(msgs);
  EXPECT_EQ(bsp.hang_events(), 1);
  EXPECT_EQ(bsp.watchdog_timeouts(), 1);  // one deadline, clean retry, done
  EXPECT_LT(bsp.hang_suspect(), 0);       // Suspect is not Dead: no escalation
  EXPECT_LT(bsp.elapsed(), inj.hang_seconds());  // bounded far below 10 ms
}

TEST(Watchdog, UnwatchedHangPaysTheFullStall) {
  rt::FaultInjector inj(5);
  rt::FaultPolicy hang;
  hang.every = 1;
  hang.max_injections = 1;
  inj.set_site_policy(rt::FaultKind::HangExchange, "exchange", hang);
  rt::BspSimulator bsp(4);
  bsp.set_fault_injector(&inj);  // straggler defense off: no watchdog
  const std::vector<rt::Message> msgs = {{0, 1, 4096}};
  bsp.exchange(msgs);
  EXPECT_GE(bsp.elapsed(), inj.hang_seconds());
  EXPECT_GE(bsp.phases().fault_stall, inj.hang_seconds());
}

TEST(Watchdog, PersistentHangEscalatesToDeadAfterMissThreshold) {
  rt::FaultInjector inj(5);
  rt::FaultPolicy hang;
  hang.every = 1;
  hang.max_injections = 1;
  inj.set_site_policy(rt::FaultKind::HangExchange, "exchange", hang);
  rt::FaultPolicy again;
  again.every = 1;  // the retry never goes through: the hang is persistent
  inj.set_site_policy(rt::FaultKind::HangExchange, "exchange-retry", again);
  rt::BspSimulator bsp(4);
  bsp.set_fault_injector(&inj);
  bsp.set_straggler(armed_straggler());
  const std::vector<rt::Message> msgs = {{0, 1, 4096}};
  bsp.exchange(msgs);
  EXPECT_EQ(bsp.watchdog_timeouts(), 3);  // heartbeat miss_threshold deadlines
  EXPECT_GE(bsp.hang_suspect(), 0);
  EXPECT_LT(bsp.hang_suspect(), 4);
  EXPECT_LT(bsp.elapsed(), inj.hang_seconds());  // still bounded
  bsp.clear_hang_suspect();
  EXPECT_LT(bsp.hang_suspect(), 0);
}

// ---- options validation -----------------------------------------------------

TEST(ResilienceOptionsValidation, RejectsNonsenseWithClearErrors) {
  const auto expect_rejected = [](auto mutate, const char* what) {
    ResilienceOptions opt;
    mutate(opt);
    EXPECT_THROW(validate_resilience_options(opt), std::invalid_argument) << what;
  };
  expect_rejected([](ResilienceOptions& o) { o.max_retries = -1; }, "negative retries");
  expect_rejected([](ResilienceOptions& o) { o.max_rollbacks = -2; }, "negative rollbacks");
  expect_rejected([](ResilienceOptions& o) { o.backoff_base_s = -1e-6; }, "negative backoff");
  expect_rejected([](ResilienceOptions& o) { o.heartbeat.period_s = 0.0; }, "zero heartbeat");
  expect_rejected([](ResilienceOptions& o) { o.heartbeat.miss_threshold = 0; }, "zero threshold");
  expect_rejected([](ResilienceOptions& o) { o.heartbeat.suspect_after = 9; },
                  "suspect_after above miss_threshold");
  expect_rejected([](ResilienceOptions& o) { o.sdc.block_cells = 0; }, "zero block");
  expect_rejected([](ResilienceOptions& o) { o.sdc.sentinel_cells = -1; }, "negative sentinels");
  expect_rejected([](ResilienceOptions& o) { o.straggler.ewma_alpha = 0.0; }, "zero alpha");
  expect_rejected([](ResilienceOptions& o) { o.straggler.ewma_alpha = 1.5; }, "alpha above 1");
  expect_rejected([](ResilienceOptions& o) { o.straggler.slow_ratio = 1.0; }, "ratio at 1");
  expect_rejected([](ResilienceOptions& o) { o.straggler.clip_ratio = 1.5; },
                  "clip below the suspect line");
  expect_rejected([](ResilienceOptions& o) { o.straggler.chronic_steps = 0; }, "zero chronic");
  expect_rejected([](ResilienceOptions& o) { o.straggler.deadline_factor = 1.0; },
                  "deadline factor at 1");
  expect_rejected([](ResilienceOptions& o) { o.straggler.max_rebalances = 0; }, "zero rebalances");

  // Defaults are valid, and the message names the offending field.
  EXPECT_NO_THROW(validate_resilience_options(ResilienceOptions{}));
  try {
    ResilienceOptions opt;
    opt.straggler.deadline_factor = 0.5;
    validate_resilience_options(opt);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("deadline_factor"), std::string::npos);
  }
}

// Each field below is legal on its own; the *pair* is contradictory. These are
// the combos chaos campaigns kept producing by accident: a defense that looks
// armed but whose mitigations can never engage.
TEST(ResilienceOptionsValidation, RejectsContradictoryCombosAtConstruction) {
  // An empty Suspect window under an enabled straggler defense: with
  // suspect_after == miss_threshold every late rank jumps straight to the
  // Dead verdict, so the watchdog retries / speculation / rebalance the
  // options asked for can never run. The message must say which knob to move.
  {
    ResilienceOptions opt;
    opt.straggler.enabled = true;
    opt.heartbeat.suspect_after = opt.heartbeat.miss_threshold;
    try {
      validate_resilience_options(opt);
      FAIL() << "empty Suspect window accepted";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("Suspect window"), std::string::npos) << msg;
      EXPECT_NE(msg.find("suspect_after"), std::string::npos) << msg;
    }
  }
  // A rollback budget with checkpointing disabled: interval <= 0 never takes
  // a snapshot, so there is nothing the budget could ever roll back to.
  {
    ResilienceOptions opt;
    opt.checkpoint.interval = 0;  // default max_rollbacks stays > 0
    try {
      validate_resilience_options(opt);
      FAIL() << "rollback budget without checkpoints accepted";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("checkpoint.interval"), std::string::npos) << msg;
      EXPECT_NE(msg.find("max_rollbacks"), std::string::npos) << msg;
    }
  }
  // The resolutions the messages point at are both accepted.
  {
    ResilienceOptions opt;  // straggler disabled: detector precedence is moot
    opt.heartbeat.suspect_after = opt.heartbeat.miss_threshold;
    EXPECT_NO_THROW(validate_resilience_options(opt));
  }
  {
    ResilienceOptions opt;  // explicitly no rollback defense at all
    opt.checkpoint.interval = 0;
    opt.max_rollbacks = 0;
    EXPECT_NO_THROW(validate_resilience_options(opt));
  }
}

TEST(ResilienceOptionsValidation, SolversRejectBadOptionsAtEnable) {
  const BteScenario s = tiny_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  ResilienceOptions bad;
  bad.straggler.slow_ratio = 0.5;
  CellPartitionedSolver cell(s, phys, 4);
  EXPECT_THROW(cell.enable_resilience(bad), std::invalid_argument);
  BandPartitionedSolver band(s, phys, 4);
  EXPECT_THROW(band.enable_resilience(bad), std::invalid_argument);
  MultiGpuSolver multi(s, phys, 2);
  EXPECT_THROW(multi.enable_resilience(bad), std::invalid_argument);
}

// ---- solver end-to-end ------------------------------------------------------

TEST(StragglerSolver, TwoXSlowRankIsNeverEvicted) {
  // False-positive regression: a rank at exactly the suspect boundary (2x with
  // slow_ratio 2.0) may be mitigated but must never be treated as dead.
  const BteScenario s = tiny_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  const int nsteps = 16;
  DirectSolver serial(s, phys);
  serial.run(nsteps);

  CellPartitionedSolver part(s, phys, 4);
  ResilienceOptions opt;
  opt.straggler = armed_straggler();
  part.enable_resilience(opt);
  part.inject_slow_rank(1, 2.0);
  part.run(nsteps);
  EXPECT_EQ(part.resilience_stats().evictions, 0);
  EXPECT_EQ(part.resilience_stats().hang_escalations, 0);
  EXPECT_TRUE(bitwise_equal(part.gather_temperature(), serial.temperature()));
  EXPECT_TRUE(bitwise_equal(part.gather_intensity(), serial.intensity()));
}

TEST(StragglerSolver, CellMitigationBeatsUnmitigatedAndStaysExact) {
  const BteScenario s = tiny_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  const int nsteps = 24;
  DirectSolver serial(s, phys);
  serial.run(nsteps);

  double tts_off = 0, tts_both = 0;
  for (const bool armed : {false, true}) {
    CellPartitionedSolver part(s, phys, 8);
    ResilienceOptions opt;
    opt.straggler.enabled = armed;
    part.enable_resilience(opt);
    part.inject_slow_rank(2, 4.0);
    part.run(nsteps);
    (armed ? tts_both : tts_off) = part.phases().total();
    EXPECT_TRUE(bitwise_equal(part.gather_temperature(), serial.temperature()));
    EXPECT_TRUE(bitwise_equal(part.gather_intensity(), serial.intensity()));
    EXPECT_EQ(part.resilience_stats().evictions, 0);
    if (armed) {
      EXPECT_GE(part.resilience_stats().rebalances, 1);
      EXPECT_GT(part.resilience_stats().rebalance_seconds, 0.0);
      for (const int32_t owners : part.owner_counts()) EXPECT_EQ(owners, 1);
    }
  }
  EXPECT_LT(tts_both, tts_off);
}

TEST(StragglerSolver, BandWeightedDerateKeepsEveryRankAndStaysExact) {
  const BteScenario s = tiny_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  const int nsteps = 16;
  DirectSolver serial(s, phys);
  serial.run(nsteps);

  BandPartitionedSolver band(s, phys, 4);
  ResilienceOptions opt;
  opt.straggler = armed_straggler();
  opt.straggler.speculation = false;  // isolate the weighted-derate path
  band.enable_resilience(opt);
  band.inject_slow_rank(1, 4.0);
  band.run(nsteps);
  // The derate keeps the victim in the fleet on a smaller band share.
  EXPECT_EQ(band.nparts(), 4);
  EXPECT_GE(band.resilience_stats().rebalances, 1);
  EXPECT_EQ(band.resilience_stats().evictions, 0);
  for (const int32_t owners : band.owner_counts()) EXPECT_EQ(owners, 1);
  EXPECT_TRUE(bitwise_equal(band.temperature(), serial.temperature()));
  EXPECT_TRUE(bitwise_equal(band.gather_intensity(), serial.intensity()));
}

TEST(StragglerSolver, SpeculationOnlyModeChargesItsOwnPhase) {
  const BteScenario s = tiny_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  const int nsteps = 16;
  DirectSolver serial(s, phys);
  serial.run(nsteps);

  CellPartitionedSolver part(s, phys, 8);
  ResilienceOptions opt;
  opt.straggler = armed_straggler();
  opt.straggler.rebalance = false;  // isolate speculative re-execution
  part.enable_resilience(opt);
  part.inject_slow_rank(2, 4.0);
  part.run(nsteps);
  EXPECT_GE(part.resilience_stats().speculations, 1);
  EXPECT_GT(part.phases().speculation, 0.0);
  EXPECT_DOUBLE_EQ(part.phases().rebalance, 0.0);
  EXPECT_EQ(part.resilience_stats().evictions, 0);
  EXPECT_TRUE(bitwise_equal(part.gather_temperature(), serial.temperature()));
}

TEST(StragglerSolver, HangEscalationEvictsThroughTheShrinkPath) {
  const BteScenario s = tiny_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  const int nsteps = 16;
  DirectSolver serial(s, phys);
  serial.run(nsteps);

  rt::FaultInjector inj(5);
  rt::FaultPolicy hang;
  hang.every = 1;
  hang.first_event = 3;
  hang.max_injections = 1;
  inj.set_site_policy(rt::FaultKind::HangExchange, "exchange", hang);
  rt::FaultPolicy again;
  again.every = 1;
  inj.set_site_policy(rt::FaultKind::HangExchange, "exchange-retry", again);

  CellPartitionedSolver part(s, phys, 4);
  ResilienceOptions opt;
  opt.injector = &inj;
  opt.checkpoint.interval = 4;
  opt.straggler = armed_straggler();
  part.enable_resilience(opt);
  part.run(nsteps);
  EXPECT_GE(part.resilience_stats().hang_escalations, 1);
  EXPECT_GE(part.resilience_stats().evictions, 1);
  EXPECT_EQ(part.nparts(), 3);
  EXPECT_TRUE(bitwise_equal(part.gather_temperature(), serial.temperature()));
  EXPECT_TRUE(bitwise_equal(part.gather_intensity(), serial.intensity()));
}

TEST(StragglerSolver, JitterCountsEventsWithoutTouchingNumerics) {
  const BteScenario s = tiny_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  const int nsteps = 16;
  DirectSolver serial(s, phys);
  serial.run(nsteps);

  rt::FaultInjector inj(7);
  rt::FaultPolicy jit;
  jit.every = 3;
  inj.set_policy(rt::FaultKind::JitterKernel, jit);
  BandPartitionedSolver band(s, phys, 4);
  ResilienceOptions opt;
  opt.injector = &inj;
  opt.straggler = armed_straggler();
  band.enable_resilience(opt);
  band.run(nsteps);
  EXPECT_GT(band.resilience_stats().jitter_events, 0);
  EXPECT_TRUE(bitwise_equal(band.temperature(), serial.temperature()));
  EXPECT_TRUE(bitwise_equal(band.gather_intensity(), serial.intensity()));
}

TEST(StragglerSolver, FaultFreeDefenseChargesNothing) {
  const BteScenario s = tiny_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  const int nsteps = 12;
  DirectSolver serial(s, phys);
  serial.run(nsteps);

  CellPartitionedSolver part(s, phys, 4);
  ResilienceOptions opt;
  opt.straggler = armed_straggler();
  // Compute telemetry is measured wall time, so OS jitter under a loaded test
  // host can legitimately look like a straggler. The invariant under test is
  // that an armed-but-idle defense charges nothing, so put the trip point out
  // of reach of scheduler noise.
  opt.straggler.slow_ratio = 1e6;
  opt.straggler.clip_ratio = 2e6;
  part.enable_resilience(opt);
  part.run(nsteps);
  EXPECT_DOUBLE_EQ(part.phases().speculation, 0.0);
  EXPECT_DOUBLE_EQ(part.phases().rebalance, 0.0);
  EXPECT_EQ(part.resilience_stats().speculations, 0);
  EXPECT_EQ(part.resilience_stats().rebalances, 0);
  EXPECT_EQ(part.resilience_stats().evictions, 0);
  EXPECT_TRUE(bitwise_equal(part.gather_temperature(), serial.temperature()));
}

// ---- multi-GPU --------------------------------------------------------------

TEST(StragglerMultiGpu, SimGpuSlowAndJitterCounters) {
  rt::SimGpu gpu(rt::GpuSpec::a6000());
  EXPECT_THROW(gpu.set_slow(0.5), std::invalid_argument);
  EXPECT_FALSE(gpu.is_slow());
  rt::KernelStats ks;
  ks.threads = 1024;
  ks.flops_per_thread = 32;
  ks.dram_bytes_per_thread = 16;
  gpu.launch("k", ks, {});
  const double base = gpu.counters().kernel_seconds;
  gpu.set_slow(3.0);
  EXPECT_TRUE(gpu.is_slow());
  gpu.launch("k", ks, {});
  EXPECT_NEAR(gpu.counters().kernel_seconds, base * 4.0, base * 1e-9);
  EXPECT_NEAR(gpu.counters().straggler_seconds, base * 2.0, base * 1e-9);
  EXPECT_EQ(gpu.counters().jitter_events, 0);
}

TEST(StragglerMultiGpu, SlowDeviceIsDeratedBitExactly) {
  const BteScenario s = tiny_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  const int nsteps = 16;
  DirectSolver serial(s, phys);
  serial.run(nsteps);

  MultiGpuSolver multi(s, phys, 4);
  ResilienceOptions opt;
  opt.straggler = armed_straggler();
  multi.enable_resilience(opt);
  multi.inject_slow_device(1, 4.0);
  multi.run(nsteps);
  EXPECT_GE(multi.resilience_stats().rebalances, 1);
  EXPECT_GT(multi.phases().rebalance, 0.0);
  EXPECT_EQ(multi.resilience_stats().evictions, 0);
  EXPECT_EQ(multi.num_devices(), 4);  // derated, not evicted
  for (const int32_t owners : multi.owner_counts()) EXPECT_EQ(owners, 1);
  // The victim device keeps its slow hardware state across the rebalance.
  EXPECT_TRUE(multi.device(1).is_slow());
  EXPECT_TRUE(bitwise_equal(multi.temperature(), serial.temperature()));
  EXPECT_TRUE(bitwise_equal(multi.gather_intensity(), serial.intensity()));
}

TEST(StragglerMultiGpu, InjectedSlowRankFaultSticksToOneDevice) {
  const BteScenario s = tiny_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  rt::FaultInjector inj(11);
  rt::FaultPolicy slow;
  slow.every = 1;
  slow.first_event = 2;
  slow.max_injections = 1;
  inj.set_site_policy(rt::FaultKind::SlowRank, "launch", slow);
  MultiGpuSolver multi(s, phys, 2);
  ResilienceOptions opt;
  opt.injector = &inj;
  multi.enable_resilience(opt);
  multi.run(8);
  int slow_devices = 0;
  for (int d = 0; d < multi.num_devices(); ++d)
    if (multi.device(d).is_slow()) slow_devices += 1;
  EXPECT_EQ(slow_devices, 1);  // sticky: exactly the one consulted launch
  DirectSolver serial(s, phys);
  serial.run(8);
  EXPECT_TRUE(bitwise_equal(multi.temperature(), serial.temperature()));
}
