// Silent-data-corruption defense: ABFT checksum primitives, silent bit-flip
// injection, verify-on-receipt transfer sidecars, and — per distributed
// solver — detection within one step, localization to a block, repair without
// full rollback, and bit-exact final fields. The "same block fails twice"
// escalation to checkpoint rollback is exercised through the dedicated
// repair-site policies.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "bte/direct_solver.hpp"
#include "bte/multi_gpu_solver.hpp"
#include "bte/partitioned_solver.hpp"
#include "bte/resilience.hpp"
#include "core/codegen/bytecode.hpp"
#include "core/codegen/movement.hpp"
#include "core/symbolic/parser.hpp"
#include "core/symbolic/simplify.hpp"
#include "runtime/abft.hpp"
#include "runtime/fault.hpp"
#include "runtime/simmpi.hpp"

using namespace finch;
using namespace finch::bte;

namespace {

std::shared_ptr<const BtePhysics> phys() {
  static auto p = std::make_shared<const BtePhysics>(6, 8);
  return p;
}

BteScenario scen() {
  BteScenario s;
  s.nx = 10;
  s.ny = 8;
  s.lx = s.ly = 50e-6;
  s.hot_w = 20e-6;
  s.ndirs = 8;
  s.nbands = 6;
  s.dt = 1e-12;
  return s;
}

void expect_bitwise_equal(std::span<const double> a, std::span<const double> b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "index " << i;
}

std::vector<double> ramp(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 0.25 * static_cast<double>(i) + 1.0;
  return v;
}

}  // namespace

// ---- ABFT primitives ---------------------------------------------------------

TEST(Abft, FletcherCatchesEverySingleMantissaBitFlip) {
  const std::vector<double> data = ramp(32);
  const rt::BlockChecksum clean = rt::block_checksum(data);
  for (int bit = 0; bit < 52; ++bit) {
    std::vector<double> hit = data;
    uint64_t bits;
    std::memcpy(&bits, &hit[17], sizeof(bits));
    bits ^= 1ULL << bit;
    std::memcpy(&hit[17], &bits, sizeof(bits));
    EXPECT_TRUE(std::isfinite(hit[17]));
    EXPECT_FALSE(rt::block_checksum(hit).matches(clean)) << "bit " << bit;
  }
}

TEST(Abft, ComparisonIsBitExactNotValueBased) {
  // 0.0 and -0.0 compare equal as values; the checksum must tell them apart.
  const std::vector<double> pos = {0.0, 1.0};
  const std::vector<double> neg = {-0.0, 1.0};
  EXPECT_FALSE(rt::block_checksum(neg).matches(rt::block_checksum(pos)));
  EXPECT_TRUE(rt::block_checksum(pos).matches(rt::block_checksum(pos)));
}

TEST(Abft, BlockLedgerLocalizesAndHeals) {
  std::vector<double> data = ramp(120);
  rt::BlockLedger ledger(data.size(), 24);
  EXPECT_EQ(ledger.num_blocks(), 5u);
  ledger.update(data);
  EXPECT_TRUE(ledger.verify(data).empty());

  uint64_t bits;
  std::memcpy(&bits, &data[77], sizeof(bits));
  bits ^= 1ULL << 13;
  std::memcpy(&data[77], &bits, sizeof(bits));

  const auto bad = ledger.verify(data);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], 77u / 24u);  // localized to the containing block only
  const auto range = ledger.range(bad[0]);
  EXPECT_LE(range.begin, 77u);
  EXPECT_GT(range.end, 77u);

  ledger.update_block(bad[0], data);  // owner re-adopts after a repair
  EXPECT_TRUE(ledger.verify(data).empty());
}

TEST(Abft, RaggedLastBlockIsCovered) {
  std::vector<double> data = ramp(50);
  rt::BlockLedger ledger(data.size(), 16);
  EXPECT_EQ(ledger.num_blocks(), 4u);
  EXPECT_EQ(ledger.range(3).begin, 48u);
  EXPECT_EQ(ledger.range(3).end, 50u);
  ledger.update(data);
  data[49] = -data[49];
  const auto bad = ledger.verify(data);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], 3u);
}

// ---- silent fault injection --------------------------------------------------

TEST(SilentFaults, FlipBitStaysFiniteAndMantissaOnly) {
  rt::FaultInjector inj(99);
  rt::FaultPolicy fire;
  fire.every = 1;
  inj.set_policy(rt::FaultKind::BitFlipDeviceArray, fire);
  std::vector<double> data = ramp(64);
  const std::vector<double> orig = data;
  for (int k = 0; k < 40; ++k) {
    // Real call sites consult first; the fired event advances the draw key,
    // so consecutive flips land on different (element, bit) pairs.
    ASSERT_TRUE(inj.should_fault(rt::FaultKind::BitFlipDeviceArray, "t"));
    const size_t idx = inj.flip_bit(data, rt::FaultKind::BitFlipDeviceArray, "t");
    ASSERT_LT(idx, data.size());
    EXPECT_TRUE(std::isfinite(data[idx]));
    uint64_t a, b;
    std::memcpy(&a, &data[idx], sizeof(a));
    std::memcpy(&b, &orig[idx], sizeof(b));
    // The exponent and sign bits are untouched, so the damage is silent by
    // construction: the value stays finite and plausibly scaled.
    EXPECT_EQ(a >> 52, b >> 52) << "iteration " << k;
  }
  EXPECT_NE(data, orig);
}

TEST(SilentFaults, FlipBitIsDeterministicInSeed) {
  rt::FaultPolicy fire;
  fire.every = 1;
  rt::FaultInjector a(1234), b(1234), c(4321);
  for (rt::FaultInjector* i : {&a, &b, &c}) i->set_policy(rt::FaultKind::BitFlipMessage, fire);
  std::vector<double> da = ramp(32), db = ramp(32), dc = ramp(32);
  for (int k = 0; k < 10; ++k) {
    a.should_fault(rt::FaultKind::BitFlipMessage, "s");
    b.should_fault(rt::FaultKind::BitFlipMessage, "s");
    c.should_fault(rt::FaultKind::BitFlipMessage, "s");
    EXPECT_EQ(a.flip_bit(da, rt::FaultKind::BitFlipMessage, "s"),
              b.flip_bit(db, rt::FaultKind::BitFlipMessage, "s"));
    c.flip_bit(dc, rt::FaultKind::BitFlipMessage, "s");
  }
  expect_bitwise_equal(da, db);
  EXPECT_NE(dc, da);  // different seed, different damage
}

TEST(SilentFaults, KindPredicates) {
  EXPECT_TRUE(rt::fault_is_silent(rt::FaultKind::BitFlipDeviceArray));
  EXPECT_TRUE(rt::fault_is_silent(rt::FaultKind::BitFlipMessage));
  EXPECT_TRUE(rt::fault_is_silent(rt::FaultKind::BitFlipReduction));
  EXPECT_FALSE(rt::fault_is_silent(rt::FaultKind::TransferCorruption));
  EXPECT_FALSE(rt::fault_is_permanent(rt::FaultKind::BitFlipMessage));
}

TEST(SilentFaults, TransmitSealsSidecarBeforeTheFlip) {
  rt::FaultInjector inj(7);
  rt::FaultPolicy p;
  p.every = 1;  // fire on every consultation
  inj.set_policy(rt::FaultKind::BitFlipMessage, p);

  rt::BspSimulator bsp(2);
  bsp.set_fault_injector(&inj);
  std::vector<double> payload = ramp(16);
  const std::vector<double> sent = payload;
  const rt::BlockChecksum sidecar = bsp.transmit(payload, "wire");
  EXPECT_EQ(bsp.silent_flips(), 1);
  EXPECT_NE(payload, sent);  // the wire flipped a bit...
  // ...but the sidecar describes the payload as sent, so the receiver catches
  // it, and a clean retransmission verifies.
  EXPECT_FALSE(rt::block_checksum(payload).matches(sidecar));
  EXPECT_TRUE(rt::block_checksum(sent).matches(sidecar));
}

// ---- codegen tier ------------------------------------------------------------

TEST(SdcCodegen, EvalAuditedFoldsEveryResult) {
  sym::EntityTable table;
  codegen::CompileEnv env;
  env.table = &table;
  const sym::Expr e = sym::simplify(sym::parse_expression("1 + 2 * 3", table));
  const codegen::Program p = codegen::compile(e, env);
  codegen::EvalContext ctx;
  rt::BlockChecksum audit;
  const double a = codegen::eval_audited(p, ctx, audit);
  EXPECT_DOUBLE_EQ(a, codegen::eval(p, ctx));
  EXPECT_EQ(audit.count, 1u);
  EXPECT_DOUBLE_EQ(audit.sum, 7.0);
  codegen::eval_audited(p, ctx, audit);
  EXPECT_EQ(audit.count, 2u);
}

TEST(SdcCodegen, TransferSidecarVerifiesOnReceipt) {
  codegen::MovementPlan::Transfer t;
  t.array = "I";
  std::vector<double> payload = ramp(40);
  t.seal(payload);
  EXPECT_TRUE(t.verify(payload));
  uint64_t bits;
  std::memcpy(&bits, &payload[9], sizeof(bits));
  bits ^= 1ULL << 30;
  std::memcpy(&payload[9], &bits, sizeof(bits));
  EXPECT_FALSE(t.verify(payload));
}

// ---- MultiGpuSolver: device-array flips --------------------------------------

TEST(SdcMultiGpu, FlipDetectedLocalizedRepairedBitExact) {
  const BteScenario s = scen();
  const int nsteps = 12;
  DirectSolver serial(s, phys());
  serial.run(nsteps);

  rt::FaultInjector inj(5);
  rt::FaultPolicy p;
  p.every = 3;  // a flip roughly every third device-step
  inj.set_site_policy(rt::FaultKind::BitFlipDeviceArray, "dev_I", p);

  MultiGpuSolver multi(s, phys(), 2);
  ResilienceOptions opt;
  opt.injector = &inj;
  opt.checkpoint.interval = 4;
  opt.sdc.enabled = true;
  opt.sdc.block_cells = 8;
  multi.enable_resilience(opt);
  multi.run(nsteps);

  const ResilienceStats& rs = multi.resilience_stats();
  EXPECT_GT(inj.stats().injected[static_cast<int>(rt::FaultKind::BitFlipDeviceArray)], 0);
  EXPECT_GT(rs.sdc_detections, 0);
  EXPECT_GT(rs.block_repairs, 0);
  // Every flip was healed in place: no repair failure, no checkpoint rollback.
  EXPECT_EQ(rs.repair_failures, 0);
  EXPECT_EQ(rs.rollbacks, 0);
  EXPECT_EQ(rs.max_detection_latency_steps, 1);
  EXPECT_GT(multi.phases().audit, 0.0);
  expect_bitwise_equal(multi.temperature(), serial.temperature());
  expect_bitwise_equal(multi.gather_intensity(), serial.intensity());
}

TEST(SdcMultiGpu, RepairFailureFallsBackToRollback) {
  const BteScenario s = scen();
  const int nsteps = 10;
  DirectSolver serial(s, phys());
  serial.run(nsteps);

  rt::FaultInjector inj(11);
  rt::FaultPolicy flip;
  flip.every = 1;
  flip.first_event = 2;
  flip.max_injections = 1;
  inj.set_site_policy(rt::FaultKind::BitFlipDeviceArray, "dev_I", flip);
  rt::FaultPolicy again;  // the repaired block is hit again -> escalate
  again.every = 1;
  again.max_injections = 1;
  inj.set_site_policy(rt::FaultKind::BitFlipDeviceArray, "repair", again);

  MultiGpuSolver multi(s, phys(), 2);
  ResilienceOptions opt;
  opt.injector = &inj;
  opt.checkpoint.interval = 4;
  opt.sdc.enabled = true;
  multi.enable_resilience(opt);
  multi.run(nsteps);

  const ResilienceStats& rs = multi.resilience_stats();
  EXPECT_EQ(rs.repair_failures, 1);
  EXPECT_GE(rs.rollbacks, 1);  // the localized path gave up; replay healed it
  EXPECT_GT(rs.replayed_steps, 0);
  expect_bitwise_equal(multi.temperature(), serial.temperature());
  expect_bitwise_equal(multi.gather_intensity(), serial.intensity());
}

TEST(SdcMultiGpu, InjectionOffStaysBitIdenticalAndReportsAudit) {
  const BteScenario s = scen();
  const int nsteps = 8;
  DirectSolver serial(s, phys());
  serial.run(nsteps);

  MultiGpuSolver multi(s, phys(), 3);
  ResilienceOptions opt;  // no injector at all
  opt.sdc.enabled = true;
  multi.enable_resilience(opt);
  multi.run(nsteps);

  const ResilienceStats& rs = multi.resilience_stats();
  EXPECT_EQ(rs.sdc_detections, 0);
  EXPECT_EQ(rs.block_repairs, 0);
  EXPECT_GT(rs.sentinel_checks, 0);
  EXPECT_GT(rs.audit_seconds, 0.0);        // the defense's cost is visible...
  EXPECT_GT(multi.phases().audit, 0.0);    // ...in its own phase
  expect_bitwise_equal(multi.temperature(), serial.temperature());
  expect_bitwise_equal(multi.gather_intensity(), serial.intensity());
}

// ---- CellPartitionedSolver: halo-message flips -------------------------------

TEST(SdcCellPartitioned, HaloFlipDetectedRepairedBitExact) {
  const BteScenario s = scen();
  const int nsteps = 12;
  DirectSolver serial(s, phys());
  serial.run(nsteps);

  rt::FaultInjector inj(21);
  rt::FaultPolicy p;
  p.every = 4;  // several flipped halo messages over the run
  inj.set_site_policy(rt::FaultKind::BitFlipMessage, "halo", p);

  CellPartitionedSolver part(s, phys(), 4);
  ResilienceOptions opt;
  opt.injector = &inj;
  opt.checkpoint.interval = 4;
  opt.sdc.enabled = true;
  part.enable_resilience(opt);
  part.run(nsteps);

  const ResilienceStats& rs = part.resilience_stats();
  EXPECT_GT(inj.stats().injected[static_cast<int>(rt::FaultKind::BitFlipMessage)], 0);
  EXPECT_GT(rs.sdc_detections, 0);
  EXPECT_GT(rs.block_repairs, 0);
  EXPECT_EQ(rs.repair_failures, 0);
  EXPECT_EQ(rs.rollbacks, 0);
  EXPECT_EQ(rs.max_detection_latency_steps, 1);
  EXPECT_GT(part.phases().audit, 0.0);
  EXPECT_GT(rs.recovery_seconds, 0.0);  // re-pulled messages are priced
  expect_bitwise_equal(part.gather_temperature(), serial.temperature());
  expect_bitwise_equal(part.gather_intensity(), serial.intensity());
}

TEST(SdcCellPartitioned, RepairFailureFallsBackToRollback) {
  const BteScenario s = scen();
  const int nsteps = 10;
  DirectSolver serial(s, phys());
  serial.run(nsteps);

  rt::FaultInjector inj(33);
  rt::FaultPolicy flip;
  flip.every = 1;
  flip.first_event = 3;
  flip.max_injections = 1;
  inj.set_site_policy(rt::FaultKind::BitFlipMessage, "halo", flip);
  rt::FaultPolicy again;
  again.every = 1;
  again.max_injections = 1;
  inj.set_site_policy(rt::FaultKind::BitFlipMessage, "halo-repair", again);

  CellPartitionedSolver part(s, phys(), 4);
  ResilienceOptions opt;
  opt.injector = &inj;
  opt.checkpoint.interval = 4;
  opt.sdc.enabled = true;
  part.enable_resilience(opt);
  part.run(nsteps);

  const ResilienceStats& rs = part.resilience_stats();
  EXPECT_EQ(rs.repair_failures, 1);
  EXPECT_GE(rs.rollbacks, 1);
  expect_bitwise_equal(part.gather_temperature(), serial.temperature());
  expect_bitwise_equal(part.gather_intensity(), serial.intensity());
}

TEST(SdcCellPartitioned, InjectionOffStaysBitIdentical) {
  const BteScenario s = scen();
  const int nsteps = 8;
  DirectSolver serial(s, phys());
  serial.run(nsteps);

  CellPartitionedSolver part(s, phys(), 3);
  ResilienceOptions opt;
  opt.sdc.enabled = true;
  part.enable_resilience(opt);
  part.run(nsteps);

  EXPECT_EQ(part.resilience_stats().sdc_detections, 0);
  EXPECT_GT(part.resilience_stats().sentinel_checks, 0);
  EXPECT_GT(part.phases().audit, 0.0);
  expect_bitwise_equal(part.gather_temperature(), serial.temperature());
  expect_bitwise_equal(part.gather_intensity(), serial.intensity());
}

// ---- BandPartitionedSolver: reduction flips ----------------------------------

TEST(SdcBandPartitioned, ReductionFlipDetectedRepairedBitExact) {
  const BteScenario s = scen();
  const int nsteps = 12;
  DirectSolver serial(s, phys());
  serial.run(nsteps);

  rt::FaultInjector inj(8);
  rt::FaultPolicy p;
  p.every = 3;
  inj.set_site_policy(rt::FaultKind::BitFlipReduction, "gather", p);

  BandPartitionedSolver band(s, phys(), 3);
  ResilienceOptions opt;
  opt.injector = &inj;
  opt.checkpoint.interval = 4;
  opt.sdc.enabled = true;
  opt.sdc.block_cells = 8;
  band.enable_resilience(opt);
  band.run(nsteps);

  const ResilienceStats& rs = band.resilience_stats();
  EXPECT_GT(inj.stats().injected[static_cast<int>(rt::FaultKind::BitFlipReduction)], 0);
  EXPECT_GT(rs.sdc_detections, 0);
  EXPECT_GT(rs.block_repairs, 0);
  EXPECT_EQ(rs.repair_failures, 0);
  EXPECT_EQ(rs.rollbacks, 0);
  EXPECT_EQ(rs.max_detection_latency_steps, 1);
  EXPECT_GT(band.phases().audit, 0.0);
  expect_bitwise_equal(band.temperature(), serial.temperature());
  expect_bitwise_equal(band.gather_intensity(), serial.intensity());
}

TEST(SdcBandPartitioned, RepairFailureFallsBackToRollback) {
  const BteScenario s = scen();
  const int nsteps = 10;
  DirectSolver serial(s, phys());
  serial.run(nsteps);

  rt::FaultInjector inj(17);
  rt::FaultPolicy flip;
  flip.every = 1;
  flip.first_event = 2;
  flip.max_injections = 1;
  inj.set_site_policy(rt::FaultKind::BitFlipReduction, "gather", flip);
  rt::FaultPolicy again;
  again.every = 1;
  again.max_injections = 1;
  inj.set_site_policy(rt::FaultKind::BitFlipReduction, "gather-repair", again);

  BandPartitionedSolver band(s, phys(), 3);
  ResilienceOptions opt;
  opt.injector = &inj;
  opt.checkpoint.interval = 4;
  opt.sdc.enabled = true;
  band.enable_resilience(opt);
  band.run(nsteps);

  const ResilienceStats& rs = band.resilience_stats();
  EXPECT_EQ(rs.repair_failures, 1);
  EXPECT_GE(rs.rollbacks, 1);
  expect_bitwise_equal(band.temperature(), serial.temperature());
  expect_bitwise_equal(band.gather_intensity(), serial.intensity());
}

TEST(SdcBandPartitioned, InjectionOffStaysBitIdentical) {
  const BteScenario s = scen();
  const int nsteps = 8;
  DirectSolver serial(s, phys());
  serial.run(nsteps);

  BandPartitionedSolver band(s, phys(), 2);
  ResilienceOptions opt;
  opt.sdc.enabled = true;
  band.enable_resilience(opt);
  band.run(nsteps);

  EXPECT_EQ(band.resilience_stats().sdc_detections, 0);
  EXPECT_GT(band.resilience_stats().sentinel_checks, 0);
  EXPECT_GT(band.phases().audit, 0.0);
  expect_bitwise_equal(band.temperature(), serial.temperature());
  expect_bitwise_equal(band.gather_intensity(), serial.intensity());
}

// ---- invariants --------------------------------------------------------------

TEST(SdcInvariants, EnergyTripwireQuietOnHealthyRun) {
  const BteScenario s = scen();
  MultiGpuSolver multi(s, phys(), 2);
  ResilienceOptions opt;
  opt.sdc.enabled = true;
  multi.enable_resilience(opt);
  multi.run(10);
  // The explicit scheme's per-step energy change is far below the tolerance,
  // so a fault-free run records no violations.
  EXPECT_EQ(multi.resilience_stats().invariant_violations, 0);
}

TEST(SdcInvariants, SdcOffMatchesPlainGuardedRun) {
  // With sdc.enabled=false nothing about the guarded path changes: phases and
  // fields are bit-identical to a resilient run without the SDC knobs set.
  const BteScenario s = scen();
  MultiGpuSolver a(s, phys(), 2), b(s, phys(), 2);
  ResilienceOptions plain;
  a.enable_resilience(plain);
  ResilienceOptions off;
  off.sdc.enabled = false;
  b.enable_resilience(off);
  a.run(6);
  b.run(6);
  EXPECT_EQ(a.phases().communication, b.phases().communication);
  EXPECT_EQ(a.phases().audit, 0.0);
  EXPECT_EQ(b.phases().audit, 0.0);
  expect_bitwise_equal(a.temperature(), b.temperature());
}
