// Prints the native-backend kernel TU for the gray-model scenario to stdout.
//
// tools/check_docs.sh diffs this output against the commented listing embedded
// in CODEGEN.md §7 (between the BEGIN/END GENERATED markers), so the doc can
// never drift from the live emitter — the same golden discipline
// source_emitter_test.cpp applies to emit_cpp_source. Run with --fix via the
// script to regenerate the block in place.

#include <cstdio>
#include <string>

#include "bte/gray.hpp"

int main() {
  finch::bte::GrayScenario scen;  // the documented configuration: 12 directions
  finch::bte::GrayBteProblem gray(scen);
  const std::string src = gray.problem().generated_native_source();
  std::fwrite(src.data(), 1, src.size(), stdout);
  return 0;
}
