#!/usr/bin/env bash
# Documentation gates, run by the CI `docs` job (and locally: tools/check_docs.sh):
#
#  1. Every public header under src/ must open with a file-level doc comment
#     (a `//` line immediately after `#pragma once`) — the convention every
#     module in this repo follows.
#  2. Every intra-repo Markdown link ([text](path)) in the tracked *.md files
#     must resolve to an existing file, so doc refactors can't leave dangling
#     references.
#  3. The emitted-kernel listing in CODEGEN.md §7 (between the BEGIN/END
#     GENERATED markers) must match what the live emitter produces for the
#     gray-model scenario (tools/emit_kernel_listing). Run with --fix to
#     regenerate the block in place. Skipped with a note when the tool binary
#     is not built; set FINCH_EMIT_TOOL to point at it explicitly.
set -u
cd "$(dirname "$0")/.."

fix_mode=0
[ "${1:-}" = "--fix" ] && fix_mode=1

failures=0

# ---- 1. undocumented public headers -----------------------------------------
while IFS= read -r hpp; do
  second_line=$(sed -n 2p "$hpp")
  case "$second_line" in
    //*) ;;
    *)
      echo "DOCS-CHECK [!!] missing file-level doc comment: $hpp"
      failures=$((failures + 1))
      ;;
  esac
done < <(find src -name '*.hpp' | sort)

# ---- 2. intra-repo Markdown links -------------------------------------------
# Extract [text](target) links; ignore external URLs, mailto and pure anchors.
while IFS= read -r md; do
  dir=$(dirname "$md")
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}   # strip anchor
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "DOCS-CHECK [!!] broken link in $md: $target"
      failures=$((failures + 1))
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$md" | sed 's/.*](\([^)]*\))/\1/')
done < <(find . -name '*.md' -not -path './build/*' -not -path './.git/*' | sort)

# ---- 3. CODEGEN.md emitted-kernel listing -----------------------------------
# The listing is the emitter's verbatim output; regenerating on drift keeps
# the documented kernel honest the same way the golden source tests do.
emit_tool="${FINCH_EMIT_TOOL:-}"
if [ -z "$emit_tool" ]; then
  for cand in build*/tools/emit_kernel_listing; do
    [ -x "$cand" ] && emit_tool="$cand" && break
  done
fi
if [ -f CODEGEN.md ]; then
  if [ -z "$emit_tool" ] || [ ! -x "$emit_tool" ]; then
    echo "DOCS-CHECK [--] CODEGEN.md listing not checked (emit_kernel_listing not built;" \
         "build it or set FINCH_EMIT_TOOL)"
  else
    begin_marker='<!-- BEGIN GENERATED: emit_kernel_listing -->'
    end_marker='<!-- END GENERATED -->'
    if ! grep -qF "$begin_marker" CODEGEN.md || ! grep -qF "$end_marker" CODEGEN.md; then
      echo "DOCS-CHECK [!!] CODEGEN.md is missing the GENERATED listing markers"
      failures=$((failures + 1))
    else
      current=$(mktemp) && expected=$(mktemp)
      # Between the markers the doc wraps the listing in a ```cpp fence.
      awk -v b="$begin_marker" -v e="$end_marker" \
          '$0==e{on=0} on && $0!~/^```/{print} $0==b{on=1}' CODEGEN.md > "$current"
      "$emit_tool" > "$expected" || { echo "DOCS-CHECK [!!] emit_kernel_listing failed"; failures=$((failures + 1)); }
      if ! diff -q "$current" "$expected" >/dev/null; then
        if [ "$fix_mode" -eq 1 ]; then
          rebuilt=$(mktemp)
          awk -v b="$begin_marker" -v e="$end_marker" -v src="$expected" '
            $0==b { print; print "```cpp"; while ((getline line < src) > 0) print line; print "```"; skip=1; next }
            $0==e { skip=0 }
            !skip { print }' CODEGEN.md > "$rebuilt"
          mv "$rebuilt" CODEGEN.md
          echo "DOCS-CHECK [ok] CODEGEN.md listing regenerated from the emitter"
        else
          echo "DOCS-CHECK [!!] CODEGEN.md §7 listing drifted from the emitter" \
               "(run tools/check_docs.sh --fix)"
          diff "$current" "$expected" | head -20
          failures=$((failures + 1))
        fi
      else
        echo "DOCS-CHECK [ok] CODEGEN.md listing matches the emitter"
      fi
      rm -f "$current" "$expected"
    fi
  fi
else
  echo "DOCS-CHECK [!!] CODEGEN.md not found"
  failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
  echo "DOCS-CHECK: $failures failure(s)"
  exit 1
fi
echo "DOCS-CHECK [ok] all public headers documented, all Markdown links resolve"
