#!/usr/bin/env bash
# Documentation gates, run by the CI `docs` job (and locally: tools/check_docs.sh):
#
#  1. Every public header under src/ must open with a file-level doc comment
#     (a `//` line immediately after `#pragma once`) — the convention every
#     module in this repo follows.
#  2. Every intra-repo Markdown link ([text](path)) in the tracked *.md files
#     must resolve to an existing file, so doc refactors can't leave dangling
#     references.
set -u
cd "$(dirname "$0")/.."

failures=0

# ---- 1. undocumented public headers -----------------------------------------
while IFS= read -r hpp; do
  second_line=$(sed -n 2p "$hpp")
  case "$second_line" in
    //*) ;;
    *)
      echo "DOCS-CHECK [!!] missing file-level doc comment: $hpp"
      failures=$((failures + 1))
      ;;
  esac
done < <(find src -name '*.hpp' | sort)

# ---- 2. intra-repo Markdown links -------------------------------------------
# Extract [text](target) links; ignore external URLs, mailto and pure anchors.
while IFS= read -r md; do
  dir=$(dirname "$md")
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}   # strip anchor
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "DOCS-CHECK [!!] broken link in $md: $target"
      failures=$((failures + 1))
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$md" | sed 's/.*](\([^)]*\))/\1/')
done < <(find . -name '*.md' -not -path './build/*' -not -path './.git/*' | sort)

if [ "$failures" -ne 0 ]; then
  echo "DOCS-CHECK: $failures failure(s)"
  exit 1
fi
echo "DOCS-CHECK [ok] all public headers documented, all Markdown links resolve"
