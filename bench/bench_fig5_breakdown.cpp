// Fig. 5: "Breakdown of execution time for the band-parallel strategy" —
// percentage of time in the intensity solve, temperature update and
// communication at 1..55 processes. Paper: intensity ~97% at 1-10 procs,
// ~73% at 55.
#include "fig_common.hpp"

using namespace finch;
using namespace finch::perf;

int main() {
  bench::print_header("Figure 5", "band-parallel execution-time breakdown (%)");
  const Workload w = Workload::paper();
  const CalibratedCosts c = bench::calibrated_costs();
  const ModelConfig m;

  std::printf("%8s %12s %14s %14s\n", "procs", "intensity", "temperature", "communication");
  double share1 = 0, share55 = 0;
  for (int p : {1, 5, 10, 20, 40, 55}) {
    const ScalingPoint pt = model_band_parallel(w, c, m, p);
    const double si = 100 * pt.intensity / pt.total;
    const double st = 100 * pt.temperature / pt.total;
    const double sc = 100 * pt.communication / pt.total;
    std::printf("%8d %11.1f%% %13.1f%% %13.1f%%\n", p, si, st, sc);
    if (p == 1) share1 = si;
    if (p == 55) share55 = si;
  }

  std::printf("\n");
  bench::check(share1 > 90.0, "intensity solve dominates (~97%) at small process counts");
  bench::check(share55 > 50.0 && share55 < 95.0,
               "intensity still dominant but visibly reduced (~73%) at 55 processes");
  bench::check(share1 > share55, "non-intensity share grows with process count");
  return 0;
}
