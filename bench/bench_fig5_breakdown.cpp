// Fig. 5: "Breakdown of execution time for the band-parallel strategy" —
// percentage of time in the intensity solve, temperature update and
// communication at 1..55 processes. Paper: intensity ~97% at 1-10 procs,
// ~73% at 55.
//
// This bench also exercises the observability substrate end to end: every
// proc count runs with tracing enabled on its own virtual track, the result
// is exported as Chrome trace-event JSON (load in Perfetto), and a
// PAPER-CHECK asserts the per-phase span sums reconcile with the modeled
// phase times to within 1%.
#include "fig_common.hpp"
#include "runtime/trace.hpp"

using namespace finch;
using namespace finch::perf;


int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  if (args.trace_path.empty()) {
    // Trace export is part of this figure's deliverable: default the path
    // instead of requiring the flag (override with --trace <path>).
    args.trace_path = "TRACE_fig5_breakdown.json";
    rt::TraceConfig cfg;
    cfg.enabled = true;
    rt::Tracer::global().configure(cfg);
  }
  bench::JsonBench json = bench::bench_json("fig5_breakdown", args);

  bench::print_header("Figure 5", "band-parallel execution-time breakdown (%)");
  const Workload w = Workload::paper();
  const CalibratedCosts c = bench::calibrated_costs();

  std::printf("%8s %12s %14s %14s\n", "procs", "intensity", "temperature", "communication");
  double share1 = 0, share55 = 0;
  bool spans_ok = true;
  int32_t track = 1;
  for (int p : {1, 5, 10, 20, 40, 55}) {
    ModelConfig m;
    m.trace_track = track++;
    m.trace_label = "band-parallel p=" + std::to_string(p);
    const ScalingPoint pt = model_band_parallel(w, c, m, p);
    const double si = 100 * pt.intensity / pt.total;
    const double st = 100 * pt.temperature / pt.total;
    const double sc = 100 * pt.communication / pt.total;
    std::printf("%8d %11.1f%% %13.1f%% %13.1f%%\n", p, si, st, sc);
    if (p == 1) share1 = si;
    if (p == 55) share55 = si;

    // Reconcile the exported spans against the model's phase breakdown.
    const auto spans = bench::span_seconds(m.trace_track);
    double span_total = 0;
    for (const auto& [name, s] : spans) span_total += s;
    spans_ok = spans_ok && bench::within_pct(spans.count("compute") ? spans.at("compute") : 0.0,
                                      pt.intensity, 1.0);
    spans_ok = spans_ok && bench::within_pct(spans.count("post_process") ? spans.at("post_process") : 0.0,
                                      pt.temperature, 1.0);
    spans_ok = spans_ok &&
               bench::within_pct(spans.count("communication") ? spans.at("communication") : 0.0,
                          pt.communication, 1.0);
    spans_ok = spans_ok && bench::within_pct(span_total, pt.total, 1.0);

    json.begin_row();
    json.cell("procs", p);
    json.cell("total_s", pt.total);
    json.cell("intensity_pct", si);
    json.cell("temperature_pct", st);
    json.cell("communication_pct", sc);
    json.cell("span_total_s", span_total);
  }

  std::printf("\n");
  bench::check(share1 > 90.0, "intensity solve dominates (~97%) at small process counts");
  bench::check(share55 > 50.0 && share55 < 95.0,
               "intensity still dominant but visibly reduced (~73%) at 55 processes");
  bench::check(share1 > share55, "non-intensity share grows with process count");
  bench::check(spans_ok, "per-phase trace spans reconcile with the modeled breakdown (<=1%)");
  bench::check(rt::Tracer::global().dropped() == 0, "no trace events dropped");
  return bench::finish_bench(json, args);
}
