// Resilience bench: recovery overhead vs injected fault rate.
//
// Runs the cell-partitioned solver under increasing transient-fault rates
// (dropped halo messages + in-flight payload corruption) with recovery armed,
// and plots the virtual-time overhead — retry backoff, retransmits, rollback
// restores and replayed steps — relative to the fault-free run. Every run is
// verified to land on the fault-free answer bit-for-bit: recovery trades time,
// never correctness.
#include <cmath>
#include <memory>

#include "bte/direct_solver.hpp"
#include "bte/partitioned_solver.hpp"
#include "bte/resilience.hpp"
#include "fig_common.hpp"
#include "runtime/fault.hpp"

using namespace finch;
using namespace finch::bte;

using bench::small_scenario;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::print_header("Resilience", "recovery overhead vs transient-fault rate");
  bench::JsonBench json = bench::bench_json("bench_resilience", args);

  const BteScenario s = small_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  const int nparts = 4;
  const int nsteps = 24;

  DirectSolver serial(s, phys);
  serial.run(nsteps);
  const auto& truth_T = serial.temperature();

  const double rates[] = {0.0, 1e-3, 5e-3, 2e-2, 5e-2};
  std::printf("%-10s %12s %9s %9s %9s %12s %12s %9s\n", "fault-rate", "faults", "retries",
              "rollbacks", "replayed", "t-total(ms)", "t-fault(ms)", "overhead");

  double baseline = 0.0;
  bool all_exact = true;
  double max_rate_overhead = 0.0;
  long long max_rate_faults = 0;

  for (const double rate : rates) {
    rt::FaultInjector inj(args.seed);
    rt::FaultPolicy p;
    p.probability = rate;
    inj.set_policy(rt::FaultKind::DroppedMessage, p);
    rt::FaultPolicy c;
    c.probability = rate / 2;
    inj.set_policy(rt::FaultKind::TransferCorruption, c);

    CellPartitionedSolver part(s, phys, nparts);
    ResilienceOptions opt;
    opt.injector = &inj;
    opt.checkpoint.interval = 6;
    part.enable_resilience(opt);
    part.run(nsteps);

    const rt::PhaseTimes& ph = part.phases();
    const ResilienceStats& rs = part.resilience_stats();
    if (rate == 0.0) baseline = ph.communication - ph.fault_stall;
    const double overhead =
        baseline > 0 ? (ph.fault_stall + ph.communication - baseline) / baseline : 0.0;

    const bool exact = bench::bitwise_equal(part.gather_temperature(), truth_T);
    all_exact = all_exact && exact;

    std::printf("%-10.3g %12lld %9lld %9lld %9lld %12.4f %12.4f %8.1f%%\n", rate,
                static_cast<long long>(inj.stats().total_injected()),
                static_cast<long long>(rs.retries), static_cast<long long>(rs.rollbacks),
                static_cast<long long>(rs.replayed_steps), ph.total() * 1e3,
                ph.fault_stall * 1e3, overhead * 100.0);

    json.begin_row();
    json.cell("fault_rate", rate);
    json.cell("faults_injected", static_cast<double>(inj.stats().total_injected()));
    json.cell("retries", static_cast<double>(rs.retries));
    json.cell("rollbacks", static_cast<double>(rs.rollbacks));
    json.cell("replayed_steps", static_cast<double>(rs.replayed_steps));
    json.cell("total_s", ph.total());
    json.cell("fault_stall_s", ph.fault_stall);
    json.cell("overhead", overhead);
    json.cell("bit_exact", exact ? 1.0 : 0.0);

    max_rate_overhead = overhead;
    max_rate_faults = inj.stats().total_injected();
  }

  bench::check(all_exact, "every faulted run recovers to the fault-free answer bit-for-bit");
  bench::check(max_rate_faults > 0, "the highest rate actually injects transient faults");
  bench::check(max_rate_overhead > 0.0,
               "recovery charges visible virtual-time overhead at the highest fault rate");
  return bench::finish_bench(json, args);
}
