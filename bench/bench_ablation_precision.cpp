// Ablation: 32- vs 64-bit floating point. The paper: "Numerical data used
// 64-bit floating point numbers. For this application 32-bit numbers did not
// provide adequate precision for long-duration simulation."
// Two parts: (a) the speed a GA102-class device WOULD gain from FP32 (the
// temptation), and (b) the precision failure that rules it out — simulate a
// long-duration run by accumulating the per-step update in float and watching
// the equilibrium drift, which double does not exhibit.
#include <cmath>
#include <memory>

#include "bte/bte_problem.hpp"
#include "fig_common.hpp"
#include "runtime/simgpu.hpp"

using namespace finch;

int main() {
  bench::print_header("Ablation", "FP32 vs FP64: speed temptation vs precision failure");

  // (a) Roofline speedup FP32 would give on the interior kernel.
  rt::SimGpu gpu(rt::GpuSpec::a6000());
  rt::KernelStats ks;
  ks.threads = 15840000;
  ks.flops_per_thread = 90;
  ks.fma_fraction = 0.35;
  ks.dram_bytes_per_thread = 18;
  const double t64 = gpu.model_kernel_seconds(ks);
  ks.single_precision = true;
  ks.dram_bytes_per_thread = 9;  // half the bytes too
  const double t32 = gpu.model_kernel_seconds(ks);
  std::printf("modeled interior kernel: FP64 %.3f ms, FP32 %.3f ms (%.1fx faster)\n", t64 * 1e3,
              t32 * 1e3, t64 / t32);
  bench::check(t64 / t32 > 4, "FP32 would be several times faster on a GA102-class device");

  // (b) Why the paper could not use it: the per-step update is a tiny
  // increment on a large value (I += dt * rhs with dt*beta ~ 1e-2 and
  // relative increments down to ~1e-9 of I). In float, increments below the
  // ulp of I are lost and a long equilibrium run drifts.
  auto phys = std::make_shared<const bte::BtePhysics>(8, 8);
  const double I_eq = phys->table.I0(4, 300.0);
  const double beta = phys->table.beta(4, 300.0);
  const double dt = 1e-13;

  // Relaxation toward a target 1e-7 above equilibrium — representative of the
  // small residual signals a 20 us (20,000 step) run must integrate.
  const double target = I_eq * (1.0 + 1e-7);
  double I_d = I_eq;
  float I_f = static_cast<float>(I_eq);
  const int steps = 20000;
  for (int i = 0; i < steps; ++i) {
    I_d += dt * beta * (target - I_d);
    I_f += static_cast<float>(dt * beta * (static_cast<double>(target) - I_f));
  }
  const double err_d = std::abs(I_d - target) / target;
  const double err_f = std::abs(static_cast<double>(I_f) - target) / target;
  const double progress_d = (I_d - I_eq) / (target - I_eq);
  const double progress_f = (static_cast<double>(I_f) - I_eq) / (target - I_eq);
  std::printf("\n20,000-step relaxation toward a +1e-7 signal (dt*beta=%.1e):\n", dt * beta);
  std::printf("  double: captured %6.2f%% of the signal (rel err %.2e)\n", 100 * progress_d, err_d);
  std::printf("  float : captured %6.2f%% of the signal (rel err %.2e)\n", 100 * progress_f, err_f);

  bench::check(progress_d > 0.5, "double precision integrates the long-duration signal");
  bench::check(progress_f < 0.5 || err_f > 100 * err_d,
               "single precision loses the signal (paper: 32-bit inadequate for long runs)");
  return 0;
}
