// Fig. 3: "Partitioning the mesh requires communication between neighbors for
// all values of I_db ... Partitioning the equations can require much less
// communication." The paper draws this as a schematic; this bench quantifies
// it with the *executing* partitioned solvers (real per-rank storage, real
// exchanges) on a reduced problem, then scales the volumes to the paper's
// full discretization.
#include <memory>

#include "bte/partitioned_solver.hpp"
#include "fig_common.hpp"

using namespace finch;
using namespace finch::bte;

int main() {
  bench::print_header("Figure 3", "communication volume: mesh vs equation partitioning");

  BteScenario s;
  s.nx = s.ny = 24;
  s.lx = s.ly = 100e-6;
  s.ndirs = 8;
  s.nbands = 8;
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  std::printf("executing solvers: %dx%d cells, %d dirs, %d bands (%d DOF/cell)\n\n", s.nx, s.ny,
              phys->num_dirs(), phys->num_bands(), phys->num_dirs() * phys->num_bands());

  std::printf("%8s %22s %22s %10s\n", "parts", "cell-part [B/step]", "band-part [B/step]", "ratio");
  bool band_always_less = true;
  for (int p : {2, 4, 8}) {
    CellPartitionedSolver cell(s, phys, p);
    BandPartitionedSolver band(s, phys, p);
    const double ratio = static_cast<double>(cell.comm().bytes_per_step) /
                         static_cast<double>(band.comm().bytes_per_step);
    std::printf("%8d %22lld %22lld %9.2fx\n", p, static_cast<long long>(cell.comm().bytes_per_step),
                static_cast<long long>(band.comm().bytes_per_step), ratio);
    // At full paper scale the halo carries 1100 doubles per interface cell,
    // so the cell-partition volume grows by dirs*bands while the band
    // gather stays at one vector of cells*bands.
    band_always_less = band_always_less && p >= 4
                           ? cell.comm().bytes_per_step > band.comm().bytes_per_step
                           : band_always_less;
  }

  // Extrapolate the same geometry to the paper's discretization.
  const int64_t cells = 120 * 120;
  const int64_t dof_bytes = 20 * 55 * 8;
  // RCB on 120x120 with p parts: interface cells ~ measured from the real partitioner.
  mesh::Mesh grid = mesh::Mesh::structured_quad(120, 120, 1.0, 1.0);
  std::printf("\nfull paper scale (120x120, 1100 DOF/cell):\n");
  for (int p : {8, 32}) {
    auto part = mesh::partition(grid, p, mesh::PartitionMethod::RCB);
    int64_t halo_cells = 0;
    for (int32_t r = 0; r < p; ++r) halo_cells += mesh::build_halo(grid, part, r).total_send_cells();
    const int64_t cell_bytes = halo_cells * dof_bytes;
    const int64_t band_bytes = cells * 55 * 8;
    std::printf("  %3d parts: cell-partition %7.2f MB/step vs band-partition %6.2f MB/step (%.1fx)\n",
                p, cell_bytes / 1e6, band_bytes / 1e6,
                static_cast<double>(cell_bytes) / static_cast<double>(band_bytes));
  }

  bench::check(true && band_always_less,
               "equation (band) partitioning moves less data per step at scale");
  std::printf("(the Fig. 4 twist: despite this, cell-partitioning scales further because the\n"
              " band count caps the parallelism at 55)\n");
  return 0;
}
