// Fig. 7: "Performance of GPU accelerated version compared to the CPU-only
// code" — band-partitioned across devices, one CPU process per GPU.
// Paper: ~18x over the CPU code at equal partition counts; strong scaling
// good to at least 10 devices, flat beyond.
#include "fig_common.hpp"

using namespace finch;
using namespace finch::perf;

int main() {
  bench::print_header("Figure 7", "CPU-only vs CPU+GPU scaling (band partitioning)");
  const Workload w = Workload::paper();
  const CalibratedCosts c = bench::calibrated_costs();
  const ModelConfig m;

  std::printf("device model: %s\n\n", m.gpu.name.c_str());
  std::printf("%8s %14s %14s %14s %10s\n", "procs", "CPU only [s]", "CPU+GPU [s]", "ideal [s]",
              "speedup");
  const double g1 = model_gpu(w, c, m, 1).total;
  std::vector<int> counts = {1, 2, 4, 5, 8, 10, 20, 40, 55};
  double ratio_sum = 0;
  double g10 = 0, g40 = 0;
  for (int p : counts) {
    const double cpu = model_band_parallel(w, c, m, p).total;
    const double gpu = model_gpu(w, c, m, p).total;
    if (p == 10) g10 = gpu;
    if (p == 40) g40 = gpu;
    ratio_sum += cpu / gpu;
    std::printf("%8d %14.3f %14.4f %14.4f %9.1fx\n", p, cpu, gpu, g1 / p, cpu / gpu);
  }
  const double mean_ratio = ratio_sum / counts.size();

  std::printf("\nmean CPU/GPU speedup at equal partition counts: %.1fx (paper: ~18x)\n\n", mean_ratio);
  bench::check(mean_ratio > 8 && mean_ratio < 40, "GPU version ~18x faster at equal partition counts");
  bench::check(g1 / g10 > 3.0, "strong scaling is good up to at least 10 devices");
  bench::check(g10 / g40 < 2.5, "little further speedup beyond ~10 devices");
  // Paper: best 10-GPU time roughly equals the best 320-process CPU time.
  const double cpu320 = model_cell_parallel(w, c, m, 320).total;
  const double r = g10 / cpu320;
  std::printf("10-GPU vs 320-process-CPU time ratio: %.2f (paper: roughly equal)\n", r);
  bench::check(r > 0.2 && r < 5.0, "best GPU time and best 320-proc CPU time are comparable");
  return 0;
}
