// Micro-benchmarks (google-benchmark): costs of the building blocks — the
// bytecode interpreter, the native JIT backend, the hand-written direct
// solver, the per-cell temperature solve, the partitioners, the thread-pool
// dispatch, and the observability layer's disabled-path overhead.
//
// Besides the microbenchmark table this binary gates the native backend's
// acceptance bar (CODEGEN.md §6): on the §III.A sweep configuration the JIT
// kernels must be >=5x faster than the bytecode VM while staying
// bit-identical, and a second identical solve must hit the kernel cache.
// PAPER-CHECK failures exit nonzero so CI can gate on them. Supports the
// shared bench flags: --seed/--json/--metrics-json/--trace.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "bte/bte_problem.hpp"
#include "bte/direct_solver.hpp"
#include "core/codegen/bytecode.hpp"
#include "core/codegen/native_backend.hpp"
#include "core/symbolic/parser.hpp"
#include "core/symbolic/simplify.hpp"
#include "fig_common.hpp"
#include "mesh/partition.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/trace.hpp"

using namespace finch;

namespace {

struct EvalFixture {
  sym::EntityTable table;
  fvm::FieldSet fields;
  std::map<std::string, std::vector<double>> coefs;
  std::map<std::string, double> scalars;
  codegen::CompileEnv env;
  codegen::Program volume, surface;

  EvalFixture() {
    table.declare_index("d", 1, 8);
    table.declare_index("b", 1, 11);
    table.declare({"I", sym::EntityKind::Variable, 1, {"d", "b"}});
    table.declare({"Io", sym::EntityKind::Variable, 1, {"b"}});
    table.declare({"beta", sym::EntityKind::Variable, 1, {"b"}});
    table.declare({"Sx", sym::EntityKind::Coefficient, 1, {"d"}});
    table.declare({"Sy", sym::EntityKind::Coefficient, 1, {"d"}});
    table.declare({"vg", sym::EntityKind::Coefficient, 1, {"b"}});
    fields.add("I", 64, 88, fvm::Layout::CellMajor, 1.0);
    fields.add("Io", 64, 11, fvm::Layout::CellMajor, 1.0);
    fields.add("beta", 64, 11, fvm::Layout::CellMajor, 1e10);
    coefs["Sx"] = std::vector<double>(8, 0.7);
    coefs["Sy"] = std::vector<double>(8, -0.7);
    coefs["vg"] = std::vector<double>(11, 5000.0);
    env.table = &table;
    env.index_order = {"b", "d"};
    env.index_extent = {11, 8};
    env.fields = &fields;
    env.coefficients = &coefs;
    env.scalar_coefficients = &scalars;

    sym::OperatorRegistry reg;
    auto eq = sym::make_conservation_form(
        *table.find("I"), "(Io[b] - I[d,b]) * beta[b] - surface(vg[b]*upwind([Sx[d];Sy[d]], I[d,b]))",
        table, reg, 2);
    auto cls = sym::classify(sym::apply_forward_euler(eq));
    volume = codegen::compile(sym::simplify(sym::add(cls.rhs_volume)), env);
    surface = codegen::compile(sym::simplify(sym::add(cls.rhs_surface)), env);
  }
};

}  // namespace

static void BM_BytecodeVolumeEval(benchmark::State& state) {
  EvalFixture f;
  codegen::EvalContext ctx;
  ctx.dt = 1e-12;
  ctx.cell = 3;
  ctx.loop_values = {4, 2, 0, 0};
  for (auto _ : state) benchmark::DoNotOptimize(codegen::eval(f.volume, ctx));
}
BENCHMARK(BM_BytecodeVolumeEval);

static void BM_BytecodeSurfaceEval(benchmark::State& state) {
  EvalFixture f;
  codegen::EvalContext ctx;
  ctx.dt = 1e-12;
  ctx.cell = 3;
  ctx.neighbor = 4;
  ctx.normal = {1.0, 0.0, 0.0};
  ctx.loop_values = {4, 2, 0, 0};
  for (auto _ : state) benchmark::DoNotOptimize(codegen::eval(f.surface, ctx));
}
BENCHMARK(BM_BytecodeSurfaceEval);

static void BM_DirectSolverStep(benchmark::State& state) {
  bte::BteScenario s;
  s.nx = s.ny = static_cast<int>(state.range(0));
  s.lx = s.ly = 100e-6;
  s.ndirs = 8;
  s.nbands = 8;
  auto phys = std::make_shared<const bte::BtePhysics>(s.nbands, s.ndirs);
  bte::DirectSolver solver(s, phys);
  for (auto _ : state) solver.step();
  state.SetItemsProcessed(state.iterations() * solver.num_cells() * solver.dofs_per_cell());
}
BENCHMARK(BM_DirectSolverStep)->Arg(16)->Arg(32);

static void BM_DslSolverStep(benchmark::State& state) {
  bte::BteScenario s;
  s.nx = s.ny = static_cast<int>(state.range(0));
  s.lx = s.ly = 100e-6;
  s.ndirs = 8;
  s.nbands = 8;
  auto phys = std::make_shared<const bte::BtePhysics>(s.nbands, s.ndirs);
  bte::BteProblem bp(s, phys);
  auto solver = bp.compile(dsl::Target::CpuSerial);
  for (auto _ : state) solver->step();
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(s.nx) * s.ny *
                          phys->num_bands() * phys->num_dirs());
}
BENCHMARK(BM_DslSolverStep)->Arg(16)->Arg(32);

static void BM_NativeSolverStep(benchmark::State& state) {
  if (!codegen::native_backend_available()) {
    state.SkipWithError("native backend unavailable (no compiler or FINCH_JIT_DISABLE)");
    return;
  }
  bte::BteScenario s;
  s.nx = s.ny = static_cast<int>(state.range(0));
  s.lx = s.ly = 100e-6;
  s.ndirs = 8;
  s.nbands = 8;
  s.backend = "native";
  auto phys = std::make_shared<const bte::BtePhysics>(s.nbands, s.ndirs);
  bte::BteProblem bp(s, phys);
  auto solver = bp.compile(dsl::Target::CpuSerial);
  solver->step();  // first sweep pays the one-time VM verification pass
  for (auto _ : state) solver->step();
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(s.nx) * s.ny *
                          phys->num_bands() * phys->num_dirs());
}
BENCHMARK(BM_NativeSolverStep)->Arg(16)->Arg(32);

static void BM_TemperatureSolve(benchmark::State& state) {
  auto phys = std::make_shared<const bte::BtePhysics>(40, 8);  // 55 bands as in the paper
  std::vector<double> G(static_cast<size_t>(phys->num_bands()));
  for (int b = 0; b < phys->num_bands(); ++b)
    G[static_cast<size_t>(b)] = 4.0 * M_PI * phys->table.I0(b, 317.0);
  for (auto _ : state) benchmark::DoNotOptimize(phys->table.solve_temperature(G, 300.0));
}
BENCHMARK(BM_TemperatureSolve);

static void BM_PartitionRcb(benchmark::State& state) {
  mesh::Mesh m = mesh::Mesh::structured_quad(120, 120, 1.0, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(mesh::partition(m, static_cast<int>(state.range(0)), mesh::PartitionMethod::RCB));
}
BENCHMARK(BM_PartitionRcb)->Arg(8)->Arg(64)->Arg(320);

static void BM_PartitionGreedy(benchmark::State& state) {
  mesh::Mesh m = mesh::Mesh::structured_quad(120, 120, 1.0, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        mesh::partition(m, static_cast<int>(state.range(0)), mesh::PartitionMethod::GreedyGraph));
}
BENCHMARK(BM_PartitionGreedy)->Arg(8)->Arg(64);

// Observability acceptance bar: with tracing disabled (the default), a span
// costs one relaxed atomic load — compare against BM_BytecodeVolumeEval
// (~tens of ns) to verify the instrumented hot paths pay <1%.
static void BM_TraceSpanDisabled(benchmark::State& state) {
  rt::Tracer::global().configure(rt::TraceConfig{});  // enabled = false
  for (auto _ : state) {
    rt::TraceSpan span("bench.disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanDisabled);

// Enabled-path span cost, for the capture-cost table in OBSERVABILITY.md
// (two clock reads + one lock-free slot append).
static void BM_TraceSpanEnabled(benchmark::State& state) {
  rt::TraceConfig cfg;
  cfg.enabled = true;
  rt::Tracer::global().configure(cfg);
  for (auto _ : state) {
    rt::TraceSpan span("bench.enabled");
    benchmark::ClobberMemory();
  }
  rt::Tracer::global().configure(rt::TraceConfig{});
  rt::Tracer::global().clear();
}
BENCHMARK(BM_TraceSpanEnabled);

// Counter add: one CAS loop on an uncontended atomic — the cost of each
// metrics hook on the instrumented paths (batched, never per-eval).
static void BM_MetricsCounterAdd(benchmark::State& state) {
  rt::Counter& c = rt::MetricsRegistry::global().counter("bench.counter");
  for (auto _ : state) c.add(1.0);
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_MetricsCounterAdd);

static void BM_ThreadPoolDispatch(benchmark::State& state) {
  rt::ThreadPool pool(2);
  std::vector<double> v(4096, 1.0);
  for (auto _ : state) {
    pool.parallel_for_chunks(0, static_cast<int64_t>(v.size()), [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) v[static_cast<size_t>(i)] *= 1.0000001;
    });
  }
  benchmark::DoNotOptimize(v.data());
}
BENCHMARK(BM_ThreadPoolDispatch);

namespace {

double jit_counter(const char* name) {
  return rt::MetricsRegistry::global().counter(name).value();
}

// Acceptance gate for the native backend (CODEGEN.md §6): the §III.A sweep
// configuration (1100 DOF/cell: 40 spectral bands -> 55 resolved, 20
// directions), grid trimmed so the VM reference run stays tractable;
// FINCH_BENCH_FAST=1 shrinks further for CI. Measured on the intensity phase
// only — the shared temperature post-step would dilute the kernel ratio.
void paper_check_native_vs_vm(bench::JsonBench& json) {
  const bool fast = std::getenv("FINCH_BENCH_FAST") != nullptr;
  bte::BteScenario s;
  s.nx = s.ny = fast ? 24 : 48;
  s.lx = s.ly = 100e-6;
  s.ndirs = fast ? 8 : 20;
  s.nbands = fast ? 8 : 40;
  s.dt = 1e-12;
  const int warm = 1;               // native pays the verify-vs-VM first sweep
  const int steps = fast ? 2 : 3;
  auto phys = std::make_shared<const bte::BtePhysics>(s.nbands, s.ndirs);
  s.backend = "vm";
  bte::BteProblem pv(s, phys);
  s.backend = "native";
  bte::BteProblem pn(s, phys);
  auto sv = pv.compile(dsl::Target::CpuSerial);
  const double fallback0 = jit_counter("jit.fallback");
  auto sn = pn.compile(dsl::Target::CpuSerial);
  bench::check(jit_counter("jit.fallback") == fallback0,
               "native backend compiled the sweep kernel (no jit.fallback)");

  sv->run(warm);
  sn->run(warm);
  const double vm0 = sv->phases().intensity;
  const double native0 = sn->phases().intensity;
  sv->run(steps);
  sn->run(steps);
  const double vm_s = sv->phases().intensity - vm0;
  const double native_s = sn->phases().intensity - native0;
  const double speedup = native_s > 0.0 ? vm_s / native_s : 0.0;

  const auto& iv = pv.problem().fields().get("I").data();
  const auto& in = pn.problem().fields().get("I").data();
  const bool bits = iv.size() == in.size() &&
                    std::memcmp(iv.data(), in.data(), iv.size() * sizeof(double)) == 0;

  char claim[160];
  std::snprintf(claim, sizeof claim,
                "native JIT >=5x over the bytecode VM on the sweep (measured %.1fx, "
                "%dx%d cells, %d dirs, %d bands)",
                speedup, s.nx, s.ny, s.ndirs, s.nbands);
  bench::check(speedup >= 5.0, claim);
  bench::check(bits, "native and VM intensity fields bit-identical after the sweep");
  bench::check(jit_counter("jit.verify.mismatch") == 0.0,
               "first-sweep verification found no native/VM divergence");

  // A second identical solve must reuse the compiled kernel.
  const double hit0 = jit_counter("jit.cache.hit");
  bte::BteProblem pn2(s, phys);
  auto sn2 = pn2.compile(dsl::Target::CpuSerial);
  bench::check(jit_counter("jit.cache.hit") > hit0,
               "second identical solve hits the kernel cache (jit.cache.hit)");

  json.set("sweep_vm_seconds", vm_s);
  json.set("sweep_native_seconds", native_s);
  json.set("sweep_speedup", speedup);
  json.set("sweep_bit_identical", bits ? 1.0 : 0.0);
  json.set("jit_compile_seconds", jit_counter("jit.compile_seconds"));
  json.set("jit_cache_hits", jit_counter("jit.cache.hit"));
  json.set("jit_cache_misses", jit_counter("jit.cache.miss"));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  benchmark::Initialize(&argc, argv);
  bench::JsonBench json = bench::bench_json("bench_kernels", args);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_header("bench_kernels", "native JIT vs bytecode VM acceptance");
  if (codegen::native_backend_available()) {
    paper_check_native_vs_vm(json);
  } else {
    // No system compiler (or FINCH_JIT_DISABLE): the acceptance bar cannot be
    // measured here — report loudly rather than passing vacuously.
    bench::check(false, "native backend available (system compiler + dlopen)");
  }
  return bench::finish_bench(json, args);
}
