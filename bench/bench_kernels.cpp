// Micro-benchmarks (google-benchmark): costs of the building blocks — the
// bytecode interpreter, the hand-written direct solver, the per-cell
// temperature solve, the partitioners, the thread-pool dispatch, and the
// observability layer's disabled-path overhead.
#include <benchmark/benchmark.h>

#include <memory>

#include "bte/bte_problem.hpp"
#include "bte/direct_solver.hpp"
#include "core/codegen/bytecode.hpp"
#include "core/symbolic/parser.hpp"
#include "core/symbolic/simplify.hpp"
#include "mesh/partition.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/trace.hpp"

using namespace finch;

namespace {

struct EvalFixture {
  sym::EntityTable table;
  fvm::FieldSet fields;
  std::map<std::string, std::vector<double>> coefs;
  std::map<std::string, double> scalars;
  codegen::CompileEnv env;
  codegen::Program volume, surface;

  EvalFixture() {
    table.declare_index("d", 1, 8);
    table.declare_index("b", 1, 11);
    table.declare({"I", sym::EntityKind::Variable, 1, {"d", "b"}});
    table.declare({"Io", sym::EntityKind::Variable, 1, {"b"}});
    table.declare({"beta", sym::EntityKind::Variable, 1, {"b"}});
    table.declare({"Sx", sym::EntityKind::Coefficient, 1, {"d"}});
    table.declare({"Sy", sym::EntityKind::Coefficient, 1, {"d"}});
    table.declare({"vg", sym::EntityKind::Coefficient, 1, {"b"}});
    fields.add("I", 64, 88, fvm::Layout::CellMajor, 1.0);
    fields.add("Io", 64, 11, fvm::Layout::CellMajor, 1.0);
    fields.add("beta", 64, 11, fvm::Layout::CellMajor, 1e10);
    coefs["Sx"] = std::vector<double>(8, 0.7);
    coefs["Sy"] = std::vector<double>(8, -0.7);
    coefs["vg"] = std::vector<double>(11, 5000.0);
    env.table = &table;
    env.index_order = {"b", "d"};
    env.index_extent = {11, 8};
    env.fields = &fields;
    env.coefficients = &coefs;
    env.scalar_coefficients = &scalars;

    sym::OperatorRegistry reg;
    auto eq = sym::make_conservation_form(
        *table.find("I"), "(Io[b] - I[d,b]) * beta[b] - surface(vg[b]*upwind([Sx[d];Sy[d]], I[d,b]))",
        table, reg, 2);
    auto cls = sym::classify(sym::apply_forward_euler(eq));
    volume = codegen::compile(sym::simplify(sym::add(cls.rhs_volume)), env);
    surface = codegen::compile(sym::simplify(sym::add(cls.rhs_surface)), env);
  }
};

}  // namespace

static void BM_BytecodeVolumeEval(benchmark::State& state) {
  EvalFixture f;
  codegen::EvalContext ctx;
  ctx.dt = 1e-12;
  ctx.cell = 3;
  ctx.loop_values = {4, 2, 0, 0};
  for (auto _ : state) benchmark::DoNotOptimize(codegen::eval(f.volume, ctx));
}
BENCHMARK(BM_BytecodeVolumeEval);

static void BM_BytecodeSurfaceEval(benchmark::State& state) {
  EvalFixture f;
  codegen::EvalContext ctx;
  ctx.dt = 1e-12;
  ctx.cell = 3;
  ctx.neighbor = 4;
  ctx.normal = {1.0, 0.0, 0.0};
  ctx.loop_values = {4, 2, 0, 0};
  for (auto _ : state) benchmark::DoNotOptimize(codegen::eval(f.surface, ctx));
}
BENCHMARK(BM_BytecodeSurfaceEval);

static void BM_DirectSolverStep(benchmark::State& state) {
  bte::BteScenario s;
  s.nx = s.ny = static_cast<int>(state.range(0));
  s.lx = s.ly = 100e-6;
  s.ndirs = 8;
  s.nbands = 8;
  auto phys = std::make_shared<const bte::BtePhysics>(s.nbands, s.ndirs);
  bte::DirectSolver solver(s, phys);
  for (auto _ : state) solver.step();
  state.SetItemsProcessed(state.iterations() * solver.num_cells() * solver.dofs_per_cell());
}
BENCHMARK(BM_DirectSolverStep)->Arg(16)->Arg(32);

static void BM_DslSolverStep(benchmark::State& state) {
  bte::BteScenario s;
  s.nx = s.ny = static_cast<int>(state.range(0));
  s.lx = s.ly = 100e-6;
  s.ndirs = 8;
  s.nbands = 8;
  auto phys = std::make_shared<const bte::BtePhysics>(s.nbands, s.ndirs);
  bte::BteProblem bp(s, phys);
  auto solver = bp.compile(dsl::Target::CpuSerial);
  for (auto _ : state) solver->step();
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(s.nx) * s.ny *
                          phys->num_bands() * phys->num_dirs());
}
BENCHMARK(BM_DslSolverStep)->Arg(16)->Arg(32);

static void BM_TemperatureSolve(benchmark::State& state) {
  auto phys = std::make_shared<const bte::BtePhysics>(40, 8);  // 55 bands as in the paper
  std::vector<double> G(static_cast<size_t>(phys->num_bands()));
  for (int b = 0; b < phys->num_bands(); ++b)
    G[static_cast<size_t>(b)] = 4.0 * M_PI * phys->table.I0(b, 317.0);
  for (auto _ : state) benchmark::DoNotOptimize(phys->table.solve_temperature(G, 300.0));
}
BENCHMARK(BM_TemperatureSolve);

static void BM_PartitionRcb(benchmark::State& state) {
  mesh::Mesh m = mesh::Mesh::structured_quad(120, 120, 1.0, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(mesh::partition(m, static_cast<int>(state.range(0)), mesh::PartitionMethod::RCB));
}
BENCHMARK(BM_PartitionRcb)->Arg(8)->Arg(64)->Arg(320);

static void BM_PartitionGreedy(benchmark::State& state) {
  mesh::Mesh m = mesh::Mesh::structured_quad(120, 120, 1.0, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        mesh::partition(m, static_cast<int>(state.range(0)), mesh::PartitionMethod::GreedyGraph));
}
BENCHMARK(BM_PartitionGreedy)->Arg(8)->Arg(64);

// Observability acceptance bar: with tracing disabled (the default), a span
// costs one relaxed atomic load — compare against BM_BytecodeVolumeEval
// (~tens of ns) to verify the instrumented hot paths pay <1%.
static void BM_TraceSpanDisabled(benchmark::State& state) {
  rt::Tracer::global().configure(rt::TraceConfig{});  // enabled = false
  for (auto _ : state) {
    rt::TraceSpan span("bench.disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanDisabled);

// Enabled-path span cost, for the capture-cost table in OBSERVABILITY.md
// (two clock reads + one lock-free slot append).
static void BM_TraceSpanEnabled(benchmark::State& state) {
  rt::TraceConfig cfg;
  cfg.enabled = true;
  rt::Tracer::global().configure(cfg);
  for (auto _ : state) {
    rt::TraceSpan span("bench.enabled");
    benchmark::ClobberMemory();
  }
  rt::Tracer::global().configure(rt::TraceConfig{});
  rt::Tracer::global().clear();
}
BENCHMARK(BM_TraceSpanEnabled);

// Counter add: one CAS loop on an uncontended atomic — the cost of each
// metrics hook on the instrumented paths (batched, never per-eval).
static void BM_MetricsCounterAdd(benchmark::State& state) {
  rt::Counter& c = rt::MetricsRegistry::global().counter("bench.counter");
  for (auto _ : state) c.add(1.0);
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_MetricsCounterAdd);

static void BM_ThreadPoolDispatch(benchmark::State& state) {
  rt::ThreadPool pool(2);
  std::vector<double> v(4096, 1.0);
  for (auto _ : state) {
    pool.parallel_for_chunks(0, static_cast<int64_t>(v.size()), [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) v[static_cast<size_t>(i)] *= 1.0000001;
    });
  }
  benchmark::DoNotOptimize(v.data());
}
BENCHMARK(BM_ThreadPoolDispatch);

BENCHMARK_MAIN();
