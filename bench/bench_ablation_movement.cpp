// Ablation: the data-movement planner ("Finch will automatically determine
// what variables need to be updated and communicated during each step") vs a
// naive generator that round-trips every GPU-visible array every step.
// Reports per-step byte volumes and the modeled PCIe time saved.
#include <memory>

#include "bte/bte_problem.hpp"
#include "core/codegen/gpu_solver.hpp"
#include "fig_common.hpp"

using namespace finch;
using namespace finch::codegen;

int main() {
  bench::print_header("Ablation", "movement planner vs naive per-step round-trips");
  bte::BteScenario s = bte::BteScenario::paper_hotspot();
  auto phys = std::make_shared<const bte::BtePhysics>(s.nbands, s.ndirs);
  bte::BteProblem bp(s, phys);

  const MovementPlan opt = gpu_movement_plan(bp.problem(), /*naive=*/false);
  const MovementPlan naive = gpu_movement_plan(bp.problem(), /*naive=*/true);

  auto show = [](const char* name, const MovementPlan& p) {
    std::printf("%-10s once H2D %8.2f MB | per step H2D %8.2f MB, D2H %8.2f MB\n", name,
                p.once_bytes() / 1e6, p.step_h2d_bytes() / 1e6, p.step_d2h_bytes() / 1e6);
    for (const auto& t : p.per_step_h2d) std::printf("      step H2D: %-6s %10.3f MB\n", t.array.c_str(), t.bytes / 1e6);
    for (const auto& t : p.per_step_d2h) std::printf("      step D2H: %-6s %10.3f MB\n", t.array.c_str(), t.bytes / 1e6);
  };
  show("planned", opt);
  show("naive", naive);

  const rt::GpuSpec gpu = rt::GpuSpec::a6000();
  const double t_opt = static_cast<double>(opt.step_total_bytes()) / gpu.pcie_bandwidth_Bps;
  const double t_naive = static_cast<double>(naive.step_total_bytes()) / gpu.pcie_bandwidth_Bps;
  std::printf("\nmodeled PCIe time per step: planned %.3f ms, naive %.3f ms (%.2fx reduction)\n",
              t_opt * 1e3, t_naive * 1e3,
              t_naive / t_opt);

  bench::check(opt.step_total_bytes() < naive.step_total_bytes(),
               "planner moves strictly less data per step than the naive generator");
  // At full paper scale, I dominates the D2H leg; Io/beta dominate H2D.
  bench::check(opt.step_h2d_bytes() < opt.step_d2h_bytes(),
               "per-step uploads (Io/beta) are smaller than the intensity download");
  bench::check(t_naive / t_opt > 1.3, "planner saves a meaningful fraction of PCIe time");
  return 0;
}
