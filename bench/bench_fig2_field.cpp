// Fig. 2 (and Fig. 1 setup): temperature field of the hot-spot scenario.
// Paper shows the heat spreading from the centered Gaussian spot on the hot
// wall after a long transient. This bench runs the scaled-down scenario and
// verifies the field's qualitative structure: peak at the spot, monotone
// decay away from it along the wall and into the bulk, symmetric about the
// centerline, bounded by the wall temperatures.
#include <cmath>
#include <memory>

#include "bte/bte_problem.hpp"
#include "fig_common.hpp"

using namespace finch;
using namespace finch::bte;

int main() {
  bench::print_header("Figure 2", "hot-spot temperature field structure");
  BteScenario s = BteScenario::small();
  s.nsteps = 300;
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  BteProblem bp(s, phys);
  auto solver = bp.compile();
  solver->run(s.nsteps);
  auto T = bp.temperature();
  const int nx = s.nx, ny = s.ny;
  auto at = [&](int i, int j) { return T[static_cast<size_t>(j * nx + i)]; };

  // Profile along the hot wall and down the centerline.
  std::printf("hot-wall profile T(x) [K]: ");
  for (int i = 0; i < nx; i += nx / 8) std::printf("%.2f ", at(i, ny - 1));
  std::printf("\ncenterline profile T(y) [K] (wall->bulk): ");
  for (int j = ny - 1; j >= 0; j -= ny / 8) std::printf("%.2f ", at(nx / 2, j));
  std::printf("\n\n");

  double tmin = 1e300, tmax = -1e300;
  int imax = 0, jmax = 0;
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      if (at(i, j) > tmax) {
        tmax = at(i, j);
        imax = i;
        jmax = j;
      }
      tmin = std::min(tmin, at(i, j));
    }
  std::printf("field range [%.2f, %.2f] K, peak at cell (%d, %d) of (%d, %d)\n\n", tmin, tmax, imax,
              jmax, nx - 1, ny - 1);

  bench::check(jmax == ny - 1 && std::abs(imax - nx / 2) <= nx / 2 - nx / 4 + nx / 8,
               "peak sits on the hot wall near the spot center");
  bench::check(tmax > s.T_init + 0.5 && tmax < s.T_hot + 0.5,
               "peak between initial equilibrium and spot temperature");
  bench::check(tmin >= s.T_cold - 0.2, "no cell below the cold-wall temperature");
  // Decay along the wall away from the spot.
  bench::check(at(nx / 2, ny - 1) > at(nx / 8, ny - 1), "temperature decays along the wall");
  // Decay into the bulk.
  bench::check(at(nx / 2, ny - 1) > at(nx / 2, ny / 2), "temperature decays into the bulk");
  // Mirror symmetry.
  double asym = 0;
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx / 2; ++i) asym = std::max(asym, std::abs(at(i, j) - at(nx - 1 - i, j)));
  bench::check(asym < 1e-6, "field symmetric about the spot centerline (symmetry BCs)");
  return 0;
}
