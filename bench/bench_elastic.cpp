// Elastic-degradation bench: completion-time overhead vs number of permanent
// failures survived.
//
// Sweeps k = 0..3 injected rank deaths over a fixed-work cell-partitioned run
// (scheduled RankFailure injection, deterministically drawn victims), then
// exercises the band-partitioned and multi-GPU solvers once each under an
// explicit kill. Every run must land on the fault-free DirectSolver answer
// bit-for-bit — shrinking to survivors trades time (detection + checkpoint
// respread + replayed steps + a smaller machine), never correctness. The
// overhead column prices only the modeled elastic bill (recovery +
// redistribution phases); measured compute is printed but not gated, since
// fewer survivors legitimately compute slower.
//
// Usage: bench_elastic [--seed N] [--json BENCH_elastic.json]
// Exit status is nonzero if any PAPER-CHECK fails (the CI fault-sweep gate).
#include <cmath>
#include <memory>

#include "bte/direct_solver.hpp"
#include "bte/multi_gpu_solver.hpp"
#include "bte/partitioned_solver.hpp"
#include "bte/resilience.hpp"
#include "fig_common.hpp"
#include "runtime/fault.hpp"

using namespace finch;
using namespace finch::bte;

using bench::bitwise_equal;
using bench::small_scenario;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::print_header("Elastic", "completion-time overhead vs permanent failures survived");

  const BteScenario s = small_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  const int nparts = 6;
  const int nsteps = 24;

  DirectSolver serial(s, phys);
  serial.run(nsteps);
  const auto& truth_T = serial.temperature();

  bench::JsonBench json = bench::bench_json("bench_elastic", args);
  json.set("nparts", nparts);
  json.set("nsteps", nsteps);

  std::printf("%-9s %9s %9s %9s %12s %14s %14s %9s\n", "failures", "survivors", "evicted",
              "replayed", "t-total(ms)", "t-detect(ms)", "t-respread(ms)", "overhead");

  bool all_exact = true;
  bool survivors_match = true;
  double elastic_bill_at_max = 0.0;
  std::vector<double> overheads;

  for (int failures = 0; failures <= 3; ++failures) {
    rt::FaultInjector inj(args.seed);
    rt::FaultPolicy p;
    p.every = 6;  // one consult per step boundary: a death roughly every 6 steps
    p.first_event = 5;
    p.max_injections = failures;
    inj.set_policy(rt::FaultKind::RankFailure, p);

    CellPartitionedSolver part(s, phys, nparts);
    ResilienceOptions opt;
    opt.injector = &inj;
    opt.checkpoint.interval = 6;
    part.enable_resilience(opt);
    part.run(nsteps);

    const rt::PhaseTimes& ph = part.phases();
    const ResilienceStats& rs = part.resilience_stats();
    // The elastic bill is fully modeled (suspicion timeouts + checkpoint
    // respread over the interconnect), so it is the deterministic overhead
    // series the figure plots; measured compute is context only.
    const double bill = ph.recovery + ph.redistribution;
    overheads.push_back(bill);

    const bool exact = bitwise_equal(part.gather_temperature(), truth_T) &&
                       bitwise_equal(part.gather_intensity(), serial.intensity());
    all_exact = all_exact && exact;
    survivors_match = survivors_match && part.nparts() == nparts - failures &&
                      rs.evictions == failures;

    std::printf("%-9d %9d %9lld %9lld %12.4f %14.6f %14.6f %9.4f\n", failures, part.nparts(),
                static_cast<long long>(rs.evictions), static_cast<long long>(rs.replayed_steps),
                ph.total() * 1e3, ph.recovery * 1e3, ph.redistribution * 1e3, bill * 1e3);

    json.begin_row();
    json.cell("failures", failures);
    json.cell("survivors", part.nparts());
    json.cell("evictions", static_cast<double>(rs.evictions));
    json.cell("replayed_steps", static_cast<double>(rs.replayed_steps));
    json.cell("total_s", ph.total());
    json.cell("recovery_s", ph.recovery);
    json.cell("redistribution_s", ph.redistribution);
    json.cell("elastic_bill_s", bill);
    json.cell("bit_exact", exact ? 1.0 : 0.0);

    if (failures == 3) elastic_bill_at_max = bill;
  }

  // One explicit kill each on the other two solver families: same invariants,
  // different redistribution mechanics (band rebalance / device shard moves).
  {
    BandPartitionedSolver band(s, phys, 4);
    ResilienceOptions opt;
    opt.checkpoint.interval = 6;
    band.enable_resilience(opt);
    band.run(nsteps / 2);
    band.kill_rank(1);
    band.run(nsteps - nsteps / 2);
    const bool exact = bitwise_equal(band.temperature(), truth_T) &&
                       bitwise_equal(band.gather_intensity(), serial.intensity());
    all_exact = all_exact && exact;
    std::printf("band      %9d %9lld %9lld %12.4f %14.6f %14.6f\n", band.nparts(),
                static_cast<long long>(band.resilience_stats().evictions),
                static_cast<long long>(band.resilience_stats().replayed_steps),
                band.phases().total() * 1e3, band.phases().recovery * 1e3,
                band.phases().redistribution * 1e3);
    json.begin_row();
    json.cell("band_survivors", band.nparts());
    json.cell("band_bit_exact", exact ? 1.0 : 0.0);
    bench::check(exact && band.nparts() == 3,
                 "band-partitioned solver survives a rank death bit-exactly");
  }
  {
    MultiGpuSolver multi(s, phys, 3);
    ResilienceOptions opt;
    opt.checkpoint.interval = 6;
    multi.enable_resilience(opt);
    multi.run(nsteps / 2);
    multi.kill_device(0);
    multi.run(nsteps - nsteps / 2);
    const bool exact = bitwise_equal(multi.temperature(), truth_T) &&
                       bitwise_equal(multi.gather_intensity(), serial.intensity());
    all_exact = all_exact && exact;
    std::printf("multi-gpu %9d %9lld %9lld %12.4f %14.6f %14.6f\n", multi.num_devices(),
                static_cast<long long>(multi.resilience_stats().evictions),
                static_cast<long long>(multi.resilience_stats().replayed_steps),
                multi.phases().total() * 1e3, multi.phases().recovery * 1e3,
                multi.phases().redistribution * 1e3);
    json.begin_row();
    json.cell("gpu_survivors", multi.num_devices());
    json.cell("gpu_bit_exact", exact ? 1.0 : 0.0);
    bench::check(exact && multi.num_devices() == 2 && multi.phases().redistribution > 0.0,
                 "multi-GPU solver survives a device loss and bills the shard re-upload");
  }

  bool monotone = true;
  for (size_t i = 1; i < overheads.size(); ++i)
    monotone = monotone && overheads[i] > overheads[i - 1];

  bench::check(all_exact,
               "every degraded run matches the fault-free temperature field bit-for-bit");
  bench::check(survivors_match, "k injected deaths leave exactly nparts-k survivors");
  bench::check(monotone, "the modeled elastic bill grows with every additional failure");
  bench::check(elastic_bill_at_max > 0.0, "surviving 3 failures charges visible virtual time");
  return bench::finish_bench(json, args);
}
