// Ablation: assemblyLoops orderings ("the ability to arrange these loops may
// also be advantageous in other applications") and field data layouts
// (CellMajor for CPU nests vs DofMajor for flattened GPU threads).
// Measures real wall time of the DSL-generated solver per ordering and the
// layout conversion cost, and verifies results are ordering-invariant.
#include <chrono>
#include <memory>

#include "bte/bte_problem.hpp"
#include "fig_common.hpp"

using namespace finch;

namespace {

double run_with_order(std::vector<std::string> order, std::vector<double>* out_field) {
  bte::BteScenario s;
  s.nx = s.ny = 20;
  s.lx = s.ly = 100e-6;
  s.ndirs = 8;
  s.nbands = 8;
  static auto phys = std::make_shared<const bte::BtePhysics>(8, 8);
  bte::BteProblem bp(s, phys);
  if (!order.empty()) bp.problem().assembly_loops(order);
  auto solver = bp.compile(dsl::Target::CpuSerial);
  const auto t0 = std::chrono::steady_clock::now();
  solver->run(20);
  const double sec = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (out_field != nullptr) {
    auto span = bp.problem().fields().get("I").data();
    out_field->assign(span.begin(), span.end());
  }
  return sec;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "assembly-loop orderings and data layouts");

  struct Case {
    const char* name;
    std::vector<std::string> order;
  };
  const Case cases[] = {
      {"cells,d,b (default)", {}},
      {"b,cells,d (paper band-outer)", {"b", "cells", "d"}},
      {"d,b,cells", {"d", "b", "cells"}},
      {"cells,b,d", {"cells", "b", "d"}},
  };
  std::vector<double> reference;
  bool all_equal = true;
  std::printf("%-32s %12s\n", "assemblyLoops order", "20 steps [s]");
  for (const Case& c : cases) {
    std::vector<double> field;
    const double sec = run_with_order(c.order, &field);
    std::printf("%-32s %12.3f\n", c.name, sec);
    if (reference.empty())
      reference = field;
    else if (field != reference)
      all_equal = false;
  }
  std::printf("\n");
  bench::check(all_equal, "all loop orderings produce bit-identical results");

  // Layout conversion (CellMajor <-> DofMajor): the cost the movement planner
  // charges when handing arrays to a target with a different preferred layout.
  fvm::CellField f("I", 14400, 1100, fvm::Layout::CellMajor, 1.0);
  const auto t0 = std::chrono::steady_clock::now();
  f.convert_layout(fvm::Layout::DofMajor);
  f.convert_layout(fvm::Layout::CellMajor);
  const double sec = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("full-scale I array (1.58e7 doubles) layout round-trip: %.3f s\n", sec);
  bench::check(sec < 10.0, "layout conversion is far cheaper than a time step at scale");
  return 0;
}
