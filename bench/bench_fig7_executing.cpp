// Executing companion to Fig. 7: instead of the analytic strategy models,
// this bench *runs* the hand-written CPU solver and the multi-device hybrid
// solver on a reduced problem and compares their modeled/measured per-step
// phases. The numerics of the two are bit-identical (tested); what differs is
// where the time goes — the same story the paper tells at full scale.
#include <memory>

#include "bte/direct_solver.hpp"
#include "bte/multi_gpu_solver.hpp"
#include "fig_common.hpp"

using namespace finch;
using namespace finch::bte;

int main() {
  bench::print_header("Figure 7 (executing)", "hand-written CPU vs multi-device hybrid, reduced scale");

  BteScenario s;
  s.nx = s.ny = 24;
  s.lx = s.ly = 100e-6;
  s.ndirs = 8;
  s.nbands = 8;
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  const int steps = 30;
  std::printf("problem: %dx%d cells, %d dirs, %d bands, %d steps\n\n", s.nx, s.ny, phys->num_dirs(),
              phys->num_bands(), steps);

  DirectSolver cpu(s, phys);
  cpu.run(steps);
  const double cpu_intensity = cpu.intensity_seconds();
  const double cpu_temp = cpu.temperature_seconds();
  std::printf("%-18s intensity %.4f s   temperature %.4f s   total %.4f s\n", "CPU (measured)",
              cpu_intensity, cpu_temp, cpu_intensity + cpu_temp);

  double gpu1_total = 0;
  for (int ndev : {1, 2, 4}) {
    MultiGpuSolver gpu(s, phys, ndev);
    gpu.run(steps);
    const auto& ph = gpu.phases();
    if (ndev == 1) gpu1_total = ph.total();
    std::printf("%d GPU%s (hybrid)    intensity %.4f s   temperature %.4f s   comm %.4f s   total %.4f s\n",
                ndev, ndev > 1 ? "s" : " ", ph.intensity, ph.temperature, ph.communication,
                ph.total());
  }

  // The GPU-side intensity phase is modeled (roofline); the CPU phases are
  // measured. The hybrid's total is dominated by the CPU temperature update —
  // the same inversion between Fig. 5 and Fig. 8.
  MultiGpuSolver gpu2(s, phys, 2);
  gpu2.run(steps);
  const auto& ph = gpu2.phases();
  std::printf("\n");
  bench::check(ph.intensity < cpu_intensity,
               "device kernel time (modeled) beats the measured CPU intensity sweep");
  bench::check(ph.temperature / ph.total() > cpu_temp / (cpu_intensity + cpu_temp),
               "temperature update is a larger share of the hybrid run");
  bench::check(gpu1_total < cpu_intensity + cpu_temp,
               "the hybrid configuration wins end-to-end at equal partition count");
  return 0;
}
