// Durable-runs bench: process-crash restart sweep, resource-exhaustion
// degradation, and cooperative cancellation.
//
// The crash sweep is the real thing, not a simulation: for each solver a
// child process is forked, runs durably, and SIGKILLs itself at a seeded
// kill point — either at a step boundary or from *inside* a checkpoint's
// .tmp-write window (via the commit hook), the instant a naive in-place
// writer would tear its only image. The parent reads the surviving
// manifest, resumes in a fresh solver and demands the finished run be
// bit-identical to an uninterrupted reference. The second act rides out
// injected AllocFailure/MemoryPressure storms on a tight memory budget via
// the graceful-degradation relief chain; the third drains on a deadline and
// resumes, the cancel converging on the same restart path as the kills.
//
// Usage: bench_durability [--seed N] [--json BENCH_durability.json]
//                         [--metrics-json FILE] [--trace FILE]
// FINCH_BENCH_FAST=1 shrinks the kill-point sweep (CI-friendly).
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bte/multi_gpu_solver.hpp"
#include "bte/partitioned_solver.hpp"
#include "bte/resilience.hpp"
#include "fig_common.hpp"
#include "runtime/cancel.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/manifest.hpp"
#include "runtime/memory.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#define FINCH_HAVE_FORK 1
#endif

using namespace finch;
using namespace finch::bte;

using bench::bitwise_equal;
using bench::check;
using bench::small_scenario;

namespace {

constexpr int kParts = 3;
constexpr int kSteps = 12;
constexpr int kCkptInterval = 2;

struct FinalState {
  std::vector<double> T, I;
  int64_t resumed_step = -1;
  ResilienceStats stats;
};

ResilienceOptions durable_options(const std::string& dir) {
  ResilienceOptions opt;
  opt.checkpoint.interval = kCkptInterval;
  opt.durable.dir = dir;
  return opt;
}

// Uninterrupted reference for `solver` — durability does not change numerics,
// so a plain resilient run is the bit-exactness bar for every crash/resume.
FinalState reference_run(const std::string& solver,
                         const std::shared_ptr<const BtePhysics>& phys) {
  const BteScenario s = small_scenario();
  ResilienceOptions opt;
  opt.checkpoint.interval = kCkptInterval;
  FinalState out;
  if (solver == "cell") {
    CellPartitionedSolver sol(s, phys, kParts);
    sol.enable_resilience(opt);
    sol.run(kSteps);
    out.T = sol.gather_temperature();
    out.I = sol.gather_intensity();
  } else if (solver == "band") {
    BandPartitionedSolver sol(s, phys, kParts);
    sol.enable_resilience(opt);
    sol.run(kSteps);
    out.T = sol.temperature();
    out.I = sol.gather_intensity();
  } else {
    MultiGpuSolver sol(s, phys, kParts);
    sol.enable_resilience(opt);
    sol.run(kSteps);
    out.T = sol.temperature();
    out.I = sol.gather_intensity();
  }
  return out;
}

// Resume from `dir`'s manifest in a fresh solver and finish the run.
FinalState resume_and_finish(const std::string& solver, const std::string& dir,
                             const std::shared_ptr<const BtePhysics>& phys) {
  const BteScenario s = small_scenario();
  const rt::RunManifest manifest = rt::read_manifest(dir + "/manifest.json");
  FinalState out;
  if (solver == "cell") {
    CellPartitionedSolver sol(s, phys, kParts);
    sol.resume_from(manifest, durable_options(dir));
    out.resumed_step = sol.step_index();
    sol.run(kSteps - static_cast<int>(sol.step_index()));
    out.T = sol.gather_temperature();
    out.I = sol.gather_intensity();
    out.stats = sol.resilience_stats();
  } else if (solver == "band") {
    BandPartitionedSolver sol(s, phys, kParts);
    sol.resume_from(manifest, durable_options(dir));
    out.resumed_step = sol.step_index();
    sol.run(kSteps - static_cast<int>(sol.step_index()));
    out.T = sol.temperature();
    out.I = sol.gather_intensity();
    out.stats = sol.resilience_stats();
  } else {
    MultiGpuSolver sol(s, phys, kParts);
    sol.resume_from(manifest, durable_options(dir));
    out.resumed_step = sol.step_index();
    sol.run(kSteps - static_cast<int>(sol.step_index()));
    out.T = sol.temperature();
    out.I = sol.gather_intensity();
    out.stats = sol.resilience_stats();
  }
  return out;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = "durability_bench_" + name;
#ifdef FINCH_HAVE_FORK
  ::mkdir(dir.c_str(), 0755);
#endif
  for (int seq = 0; seq < 64; ++seq)
    std::remove((dir + "/checkpoint_" + std::to_string(seq) + ".bin").c_str());
  std::remove((dir + "/manifest.json").c_str());
  return dir;
}

#ifdef FINCH_HAVE_FORK

// What the forked child does before SIGKILLing itself.
struct KillPoint {
  int step = -1;        // >= 0: die at this step boundary
  int ckpt_write = -1;  // >= 1: die inside the Nth checkpoint .tmp write
};

void run_child_until_kill(const std::string& solver, const std::string& dir,
                          const std::shared_ptr<const BtePhysics>& phys, KillPoint kp) {
  const BteScenario s = small_scenario();
  if (kp.ckpt_write >= 1) {
    // Die mid-commit: inside the window where checkpoint_<seq>.bin.tmp is
    // written+fsynced but the rename has not landed. Manifest writes share the
    // hook, so filter to checkpoint images only.
    static int writes = 0;
    static int target = 0;
    target = kp.ckpt_write;
    rt::set_checkpoint_commit_hook([](const std::string& path, rt::CommitPhase phase) {
      if (phase != rt::CommitPhase::AfterTmpWrite) return;
      if (path.find("checkpoint_") == std::string::npos) return;
      if (++writes == target) ::raise(SIGKILL);
    });
  }
  if (solver == "cell") {
    CellPartitionedSolver sol(s, phys, kParts);
    sol.enable_resilience(durable_options(dir));
    if (kp.step >= 0) sol.run(kp.step);
    else sol.run(kSteps);
  } else if (solver == "band") {
    BandPartitionedSolver sol(s, phys, kParts);
    sol.enable_resilience(durable_options(dir));
    if (kp.step >= 0) sol.run(kp.step);
    else sol.run(kSteps);
  } else {
    MultiGpuSolver sol(s, phys, kParts);
    sol.enable_resilience(durable_options(dir));
    if (kp.step >= 0) sol.run(kp.step);
    else sol.run(kSteps);
  }
  if (kp.step >= 0) ::raise(SIGKILL);  // crash at the step boundary
  ::_exit(41);  // mid-write kill point never fired: distinct failure code
}

// Fork, crash the child at `kp`, and verify the child died by SIGKILL.
bool crash_child(const std::string& solver, const std::string& dir,
                 const std::shared_ptr<const BtePhysics>& phys, KillPoint kp) {
  std::fflush(stdout);
  const pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    run_child_until_kill(solver, dir, phys, kp);
    ::_exit(40);  // unreachable
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return false;
  return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

#endif  // FINCH_HAVE_FORK

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::print_header("Durability",
                      "crash-restart sweep, resource-fault degradation, cancel/resume");
  bench::JsonBench json = bench::bench_json("bench_durability", args);

  const BteScenario s = small_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  const bool fast = std::getenv("FINCH_BENCH_FAST") != nullptr;

  // ---- act 1: seeded SIGKILL sweep over all three solvers -------------------
#ifdef FINCH_HAVE_FORK
  const int step_kills = fast ? 2 : 4;
  const int midwrite_kills = fast ? 1 : 2;
  std::printf("%-6s %10s %12s %9s %10s %9s\n", "solver", "kills", "mid-write", "killed",
              "resumed", "bit-exact");

  int64_t total_kills = 0, total_exact = 0;
  for (const char* solver : {"cell", "band", "mgpu"}) {
    const FinalState ref = reference_run(solver, phys);
    int64_t killed = 0, resumed = 0, exact = 0;
    std::vector<KillPoint> points;
    for (int k = 0; k < step_kills; ++k) {
      // Seeded step-boundary kill points in [1, kSteps - 1], spread by a
      // splitmix-style mix of (seed, solver length, k).
      uint64_t x = args.seed + 0x9e3779b97f4a7c15ULL *
                                   (static_cast<uint64_t>(k) * 3 + std::string(solver).size());
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      points.push_back({.step = 1 + static_cast<int>(x % (kSteps - 1)), .ckpt_write = -1});
    }
    for (int k = 0; k < midwrite_kills; ++k)
      points.push_back({.step = -1, .ckpt_write = 2 + k});  // 1st write is step 0's

    for (size_t k = 0; k < points.size(); ++k) {
      const std::string dir =
          fresh_dir(std::string(solver) + "_kill" + std::to_string(k));
      if (!crash_child(solver, dir, phys, points[k])) continue;
      killed += 1;
      try {
        const FinalState fin = resume_and_finish(solver, dir, phys);
        resumed += 1;
        if (bitwise_equal(fin.T, ref.T) && bitwise_equal(fin.I, ref.I)) exact += 1;
      } catch (const std::exception& e) {
        std::printf("  FAIL %s kill %zu: %s\n", solver, k, e.what());
      }
    }
    total_kills += static_cast<int64_t>(points.size());
    total_exact += exact;
    std::printf("%-6s %10d %12d %9lld %10lld %9lld\n", solver, step_kills, midwrite_kills,
                static_cast<long long>(killed), static_cast<long long>(resumed),
                static_cast<long long>(exact));
    json.begin_row();
    json.cell("solver", solver[0] == 'c' ? 0 : (solver[0] == 'b' ? 1 : 2));
    json.cell("kill_points", static_cast<double>(points.size()));
    json.cell("killed", static_cast<double>(killed));
    json.cell("resumed", static_cast<double>(resumed));
    json.cell("bit_exact", static_cast<double>(exact));
  }
  check(total_exact == total_kills,
        "every SIGKILL point (incl. mid-checkpoint-write) restarted bit-exact: " +
            std::to_string(total_exact) + "/" + std::to_string(total_kills));
  json.set("kills_total", static_cast<double>(total_kills));
  json.set("kills_bit_exact", static_cast<double>(total_exact));
#else
  std::printf("fork() unavailable on this platform; crash sweep skipped\n");
#endif

  // ---- act 2: resource-exhaustion storm on a tight budget -------------------
  // AllocFailure/MemoryPressure fire repeatedly while the budget barely fits
  // the device mirrors; the relief chain (drop previous checkpoint generation,
  // shrink scratch, spill images to disk) absorbs every fire, and the finished
  // field is still bit-identical to the fault-free run — degradation spends
  // bytes and virtual time, never correctness.
  {
    const FinalState ref = reference_run("mgpu", phys);
    const std::string dir = fresh_dir("mgpu_storm");
    rt::FaultInjector inj(args.seed);
    inj.set_policy(rt::FaultKind::AllocFailure,
                   {.probability = 0, .first_event = 1, .every = 3});
    inj.set_policy(rt::FaultKind::MemoryPressure,
                   {.probability = 0, .first_event = 2, .every = 2});
    // Tight: the device mirrors occupy most of it, so a MemoryPressure spike
    // (halved effective capacity) genuinely overflows and forces reliefs.
    rt::MemoryBudget budget(int64_t{256} << 10);
    MultiGpuSolver sol(s, phys, kParts);
    ResilienceOptions opt = durable_options(dir);
    opt.injector = &inj;
    opt.memory = &budget;
    sol.enable_resilience(opt);
    sol.run(kSteps);
    const ResilienceStats& rs = sol.resilience_stats();
    std::printf("resource storm: %lld alloc failures, %lld pressure events, %lld reliefs "
                "(%lld bytes), peak %lld/%lld bytes\n",
                static_cast<long long>(rs.alloc_failures),
                static_cast<long long>(rs.pressure_events),
                static_cast<long long>(rs.reliefs), static_cast<long long>(rs.relieved_bytes),
                static_cast<long long>(budget.peak()), static_cast<long long>(budget.capacity()));
    check(rs.alloc_failures > 0 && rs.pressure_events > 0,
          "resource faults actually fired (" + std::to_string(rs.alloc_failures) + " alloc, " +
              std::to_string(rs.pressure_events) + " pressure)");
    check(rs.reliefs > 0, "graceful degradation ran the relief chain " +
                              std::to_string(rs.reliefs) + " times before any fatal path");
    check(bitwise_equal(sol.temperature(), ref.T) && bitwise_equal(sol.gather_intensity(), ref.I),
          "resource storm run is bit-identical to the fault-free reference");
    json.set("storm_alloc_failures", static_cast<double>(rs.alloc_failures));
    json.set("storm_pressure_events", static_cast<double>(rs.pressure_events));
    json.set("storm_reliefs", static_cast<double>(rs.reliefs));
    json.set("storm_relieved_bytes", static_cast<double>(rs.relieved_bytes));
  }

  // ---- act 3: cooperative cancel drains, then the job resumes ---------------
  {
    const FinalState ref = reference_run("cell", phys);
    const std::string dir = fresh_dir("cell_cancel");
    rt::CancelToken cancel;
    cancel.set_step_deadline(kSteps / 2);
    {
      CellPartitionedSolver sol(s, phys, kParts);
      ResilienceOptions opt = durable_options(dir);
      opt.cancel = &cancel;
      sol.enable_resilience(opt);
      sol.run(kSteps);
      check(sol.step_index() == kSteps / 2 && sol.resilience_stats().cancel_drains == 1,
            "deadline drained the run at step " + std::to_string(sol.step_index()) +
                " with a final checkpoint");
    }
    const rt::RunManifest manifest = rt::read_manifest(dir + "/manifest.json");
    check(manifest.cancel_reason == "deadline: steps",
          "manifest records the drain reason ('" + manifest.cancel_reason + "')");
    const FinalState fin = resume_and_finish("cell", dir, phys);
    check(fin.resumed_step == kSteps / 2 && bitwise_equal(fin.T, ref.T) &&
              bitwise_equal(fin.I, ref.I),
          "cancelled job resumed from step " + std::to_string(fin.resumed_step) +
              " and finished bit-exact");
    json.set("cancel_drain_step", static_cast<double>(kSteps / 2));
  }

  return bench::finish_bench(json, args);
}
