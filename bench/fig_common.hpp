#pragma once
// Shared helpers for the figure-reproduction benches.
//
// Every bench prints (a) the series the paper's figure plots, as aligned
// columns suitable for plotting, and (b) a PAPER-CHECK section stating the
// qualitative claim from the paper and whether this build reproduces it.
// Absolute times differ from the paper (different machine, simulated GPU and
// cluster); shapes and ratios are the reproduction target.

#include <cstdio>
#include <string>
#include <vector>

#include "perf/models.hpp"

namespace finch::bench {

inline perf::CalibratedCosts calibrated_costs() {
  // One real measurement per process; set FINCH_BENCH_FAST=1 to skip the
  // calibration run and use canned defaults (CI-friendly).
  if (std::getenv("FINCH_BENCH_FAST") != nullptr) return perf::CalibratedCosts::defaults();
  return perf::CalibratedCosts::measure();
}

inline void print_header(const char* fig, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", fig, what);
  std::printf("==============================================================\n");
}

inline void check(bool ok, const std::string& claim) {
  std::printf("PAPER-CHECK %-4s %s\n", ok ? "[ok]" : "[!!]", claim.c_str());
}

inline const std::vector<int>& paper_proc_counts() {
  static const std::vector<int> p = {1, 2, 5, 10, 20, 40, 80, 160, 320};
  return p;
}

}  // namespace finch::bench
