#pragma once
// Shared helpers for the figure-reproduction benches.
//
// Every bench prints (a) the series the paper's figure plots, as aligned
// columns suitable for plotting, and (b) a PAPER-CHECK section stating the
// qualitative claim from the paper and whether this build reproduces it.
// Absolute times differ from the paper (different machine, simulated GPU and
// cluster); shapes and ratios are the reproduction target.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bte/bte_problem.hpp"
#include "perf/models.hpp"
#include "runtime/metrics.hpp"
#include "runtime/trace.hpp"

namespace finch::bench {

// Small but structurally complete scenario shared by the resilience-family
// benches (bench_resilience / bench_elastic / bench_sdc): large enough for
// real halos and several bands, small enough to run many fault configurations.
inline bte::BteScenario small_scenario() {
  bte::BteScenario s;
  s.nx = 16;
  s.ny = 12;
  s.lx = s.ly = 50e-6;
  s.hot_w = 20e-6;
  s.ndirs = 8;
  s.nbands = 8;
  s.dt = 1e-12;
  return s;
}

// Exact comparison — the resilience benches' correctness bar is bit-identity
// with the fault-free serial run, not a tolerance.
inline bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;
  return true;
}

inline perf::CalibratedCosts calibrated_costs() {
  // One real measurement per process; set FINCH_BENCH_FAST=1 to skip the
  // calibration run and use canned defaults (CI-friendly).
  if (std::getenv("FINCH_BENCH_FAST") != nullptr) return perf::CalibratedCosts::defaults();
  return perf::CalibratedCosts::measure();
}

inline void print_header(const char* fig, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", fig, what);
  std::printf("==============================================================\n");
}

// Count of failed PAPER-CHECKs in this process; benches that gate CI return
// it from main() so a broken claim fails the job, not just prints [!!].
inline int& check_failures() {
  static int failures = 0;
  return failures;
}

inline void check(bool ok, const std::string& claim) {
  if (!ok) check_failures() += 1;
  std::printf("PAPER-CHECK %-4s %s\n", ok ? "[ok]" : "[!!]", claim.c_str());
}

// Minimal JSON emitter for the benches' `--json <path>` mode: one document of
// scalar metadata plus an array of per-configuration rows, machine-readable
// for plotting/CI without a JSON dependency. Numbers print as %.17g so a
// series round-trips exactly.
class JsonBench {
 public:
  explicit JsonBench(std::string name) : name_(std::move(name)) {}

  void set(const std::string& key, double value) { scalars_.emplace_back(key, value); }
  void begin_row() { rows_.emplace_back(); }
  void cell(const std::string& key, double value) { rows_.back().emplace_back(key, value); }

  bool write(const std::string& path) const {
    std::ofstream os(path);
    if (!os) return false;
    auto num = [](double v) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", v);
      return std::string(buf);
    };
    os << "{\n  \"bench\": \"" << name_ << "\",\n";
    os << "  \"checks_failed\": " << check_failures() << ",\n";
    for (const auto& [k, v] : scalars_) os << "  \"" << k << "\": " << num(v) << ",\n";
    os << "  \"rows\": [\n";
    for (size_t r = 0; r < rows_.size(); ++r) {
      os << "    {";
      for (size_t c = 0; c < rows_[r].size(); ++c) {
        os << "\"" << rows_[r][c].first << "\": " << num(rows_[r][c].second);
        if (c + 1 < rows_[r].size()) os << ", ";
      }
      os << (r + 1 < rows_.size() ? "},\n" : "}\n");
    }
    os << "  ]\n}\n";
    return static_cast<bool>(os);
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::vector<std::pair<std::string, double>>> rows_;
};

// Shared argument scan for the figure/fault benches (unknown arguments are
// ignored so figure scripts can pass extras):
//   --json <path>          per-bench result document (JsonBench)
//   --seed <n>             fault-injection seed
//   --metrics-json <path>  dump the global metrics registry after the run
//   --trace <path>         enable tracing, export Chrome trace-event JSON
//                          (load in Perfetto / chrome://tracing)
struct BenchArgs {
  std::string json_path;
  uint64_t seed = 4242;
  std::string metrics_json_path;
  std::string trace_path;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc)
      a.json_path = argv[++i];
    else if (arg == "--seed" && i + 1 < argc)
      a.seed = static_cast<uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (arg == "--metrics-json" && i + 1 < argc)
      a.metrics_json_path = argv[++i];
    else if (arg == "--trace" && i + 1 < argc)
      a.trace_path = argv[++i];
  }
  if (!a.trace_path.empty()) {
    rt::TraceConfig cfg;
    cfg.enabled = true;
    rt::Tracer::global().configure(cfg);
  }
  return a;
}

// Shared prologue for the fault-family benches: the parsed seed lands in the
// JSON document so a sweep's artifacts are self-describing.
inline JsonBench bench_json(const char* name, const BenchArgs& args) {
  JsonBench json(name);
  json.set("seed", static_cast<double>(args.seed));
  return json;
}

// Shared epilogue: write the JSON document when asked (a failed write is a
// failed check, not a silent no-op), dump the observability artifacts the
// flags requested, and fold the PAPER-CHECK tally into the exit status so CI
// sweeps gate on every claim.
inline int finish_bench(const JsonBench& json, const BenchArgs& args) {
  if (!args.json_path.empty() && !json.write(args.json_path))
    check(false, "wrote " + args.json_path);
  if (!args.metrics_json_path.empty() &&
      !rt::MetricsRegistry::global().write_json_file(args.metrics_json_path))
    check(false, "wrote " + args.metrics_json_path);
  if (!args.trace_path.empty() &&
      !rt::Tracer::global().write_chrome_trace_file(args.trace_path))
    check(false, "wrote " + args.trace_path);
  return check_failures() > 0 ? 1 : 0;
}

// Sum of virtual-timeline (pid 1) span durations per span name on `track` —
// the reconciliation side of the trace export: per-phase sums from here must
// match the solver/model phase breakdowns (see OBSERVABILITY.md).
inline std::map<std::string, double> span_seconds(int32_t track) {
  std::map<std::string, double> sums;
  for (const rt::TraceEvent& ev : rt::Tracer::global().snapshot()) {
    if (ev.pid != 1 || ev.track != track) continue;
    sums[ev.name] += static_cast<double>(ev.dur_ns) * 1e-9;
  }
  return sums;
}

inline bool within_pct(double a, double b, double pct) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return scale == 0.0 || std::abs(a - b) <= pct / 100.0 * scale;
}

inline const std::vector<int>& paper_proc_counts() {
  static const std::vector<int> p = {1, 2, 5, 10, 20, 40, 80, 160, 320};
  return p;
}

}  // namespace finch::bench
