// Fig. 9: "Comparison of each strategy as well as a reference Fortran
// implementation based on the same model" — bands / cells / GPU / hand-written
// baseline / ideal over 1..320 processes-or-GPUs.
#include "fig_common.hpp"

using namespace finch;
using namespace finch::perf;

int main() {
  bench::print_header("Figure 9", "all strategies vs the hand-written reference");
  const Workload w = Workload::paper();
  const CalibratedCosts c = bench::calibrated_costs();
  const ModelConfig m;

  std::printf("%8s %12s %12s %12s %12s %12s\n", "procs", "bands [s]", "cells [s]", "GPU [s]",
              "fortran [s]", "ideal [s]");
  const double ideal1 = model_band_parallel(w, c, m, 1).total;
  double finch1 = 0, fort1 = 0, finch40 = 0, fort40 = 0;
  for (int p : bench::paper_proc_counts()) {
    const double tb = model_band_parallel(w, c, m, p).total;
    const double tc = model_cell_parallel(w, c, m, p).total;
    const double tg = model_gpu(w, c, m, p).total;
    const double tf = model_fortran(w, c, m, p).total;
    if (p == 1) {
      finch1 = tb;
      fort1 = tf;
    }
    if (p == 40) {
      finch40 = tb;
      fort40 = tf;
    }
    std::printf("%8d %12.3f %12.3f %12.4f %12.3f %12.3f\n", p, tb, tc, tg, tf, ideal1 / p);
  }

  std::printf("\nsequential: DSL-generated / hand-written = %.2fx (paper: roughly 2x)\n",
              finch1 / fort1);
  bench::check(finch1 / fort1 > 1.5 && finch1 / fort1 < 2.6,
               "sequential DSL code takes roughly twice as long as the hand-written code");
  bench::check(finch40 < fort40,
               "hand-written code's poorer scaling lets the DSL code overtake at higher counts");
  const double g10 = model_gpu(w, c, m, 10).total;
  const double c320 = model_cell_parallel(w, c, m, 320).total;
  bench::check(g10 / c320 > 0.2 && g10 / c320 < 5.0,
               "best times roughly equal between the 10-GPU run and the 320-CPU run");
  return 0;
}
