// Fig. 8: "Breakdown of execution time for the GPU accelerated version" at
// 1-8 GPUs. Paper: compared with Fig. 5, a substantially larger share goes to
// the (CPU) temperature update; GPU<->host communication is visible but not
// dominant.
#include "fig_common.hpp"

using namespace finch;
using namespace finch::perf;

int main() {
  bench::print_header("Figure 8", "GPU-accelerated execution-time breakdown (%)");
  const Workload w = Workload::paper();
  const CalibratedCosts c = bench::calibrated_costs();
  const ModelConfig m;

  std::printf("%8s %14s %18s %22s\n", "GPUs", "intensity(GPU)", "temperature(CPU)",
              "communication(CPU<->GPU)");
  double temp_share_4 = 0, comm_share_4 = 0;
  for (int p : {1, 2, 4, 8}) {
    const ScalingPoint pt = model_gpu(w, c, m, p);
    const double si = 100 * pt.intensity / pt.total;
    const double st = 100 * pt.temperature / pt.total;
    const double sc = 100 * pt.communication / pt.total;
    std::printf("%8d %13.1f%% %17.1f%% %21.1f%%\n", p, si, st, sc);
    if (p == 4) {
      temp_share_4 = st;
      comm_share_4 = sc;
    }
  }

  const ScalingPoint cpu4 = model_band_parallel(w, c, m, 4);
  const double cpu_temp_share_4 = 100 * cpu4.temperature / cpu4.total;
  std::printf("\ntemperature-update share at 4 partitions: GPU version %.1f%% vs CPU version %.1f%%\n",
              temp_share_4, cpu_temp_share_4);
  bench::check(temp_share_4 > 2 * cpu_temp_share_4,
               "temperature update is a much larger share of the accelerated version (Fig. 8 vs 5)");
  bench::check(comm_share_4 > 0.5 && comm_share_4 < 40.0,
               "GPU<->host communication visible but not dominant");
  return 0;
}
