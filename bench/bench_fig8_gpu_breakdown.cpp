// Fig. 8: "Breakdown of execution time for the GPU accelerated version" at
// 1-8 GPUs. Paper: compared with Fig. 5, a substantially larger share goes to
// the (CPU) temperature update; GPU<->host communication is visible but not
// dominant.
//
// Like bench_fig5_breakdown, every device count runs with tracing enabled on
// its own virtual track, the run exports Chrome trace-event JSON (load in
// Perfetto), and a PAPER-CHECK asserts the per-phase span sums reconcile
// with the modeled phase times to within 1%.
#include "fig_common.hpp"
#include "runtime/trace.hpp"

using namespace finch;
using namespace finch::perf;


int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  if (args.trace_path.empty()) {
    args.trace_path = "TRACE_fig8_gpu_breakdown.json";
    rt::TraceConfig cfg;
    cfg.enabled = true;
    rt::Tracer::global().configure(cfg);
  }
  bench::JsonBench json = bench::bench_json("fig8_gpu_breakdown", args);

  bench::print_header("Figure 8", "GPU-accelerated execution-time breakdown (%)");
  const Workload w = Workload::paper();
  const CalibratedCosts c = bench::calibrated_costs();

  std::printf("%8s %14s %18s %22s\n", "GPUs", "intensity(GPU)", "temperature(CPU)",
              "communication(CPU<->GPU)");
  double temp_share_4 = 0, comm_share_4 = 0;
  bool spans_ok = true;
  int32_t track = 1;
  for (int p : {1, 2, 4, 8}) {
    ModelConfig m;
    m.trace_track = track++;
    m.trace_label = "gpu d=" + std::to_string(p);
    const ScalingPoint pt = model_gpu(w, c, m, p);
    const double si = 100 * pt.intensity / pt.total;
    const double st = 100 * pt.temperature / pt.total;
    const double sc = 100 * pt.communication / pt.total;
    std::printf("%8d %13.1f%% %17.1f%% %21.1f%%\n", p, si, st, sc);
    if (p == 4) {
      temp_share_4 = st;
      comm_share_4 = sc;
    }

    const auto spans = bench::span_seconds(m.trace_track);
    double span_total = 0;
    for (const auto& [name, s] : spans) span_total += s;
    spans_ok = spans_ok && bench::within_pct(spans.count("compute") ? spans.at("compute") : 0.0,
                                      pt.intensity, 1.0);
    spans_ok = spans_ok && bench::within_pct(spans.count("post_process") ? spans.at("post_process") : 0.0,
                                      pt.temperature, 1.0);
    spans_ok = spans_ok &&
               bench::within_pct(spans.count("communication") ? spans.at("communication") : 0.0,
                          pt.communication, 1.0);
    spans_ok = spans_ok && bench::within_pct(span_total, pt.total, 1.0);

    json.begin_row();
    json.cell("gpus", p);
    json.cell("total_s", pt.total);
    json.cell("intensity_pct", si);
    json.cell("temperature_pct", st);
    json.cell("communication_pct", sc);
    json.cell("span_total_s", span_total);
  }

  // CPU comparison point runs on a track of its own so its spans do not
  // pollute the GPU reconciliation above.
  ModelConfig mcpu;
  mcpu.trace_track = track++;
  mcpu.trace_label = "band-parallel p=4 (comparison)";
  const ScalingPoint cpu4 = model_band_parallel(w, c, mcpu, 4);
  const double cpu_temp_share_4 = 100 * cpu4.temperature / cpu4.total;
  std::printf("\ntemperature-update share at 4 partitions: GPU version %.1f%% vs CPU version %.1f%%\n",
              temp_share_4, cpu_temp_share_4);
  bench::check(temp_share_4 > 2 * cpu_temp_share_4,
               "temperature update is a much larger share of the accelerated version (Fig. 8 vs 5)");
  bench::check(comm_share_4 > 0.5 && comm_share_4 < 40.0,
               "GPU<->host communication visible but not dominant");
  bench::check(spans_ok, "per-phase trace spans reconcile with the modeled breakdown (<=1%)");
  bench::check(rt::Tracer::global().dropped() == 0, "no trace events dropped");
  return bench::finish_bench(json, args);
}
