// Straggler bench: time-to-solution under fail-slow faults, with the defense
// off / speculation-only / rebalance-only / both.
//
// Four experiments over the distributed solvers:
//   1. headline: a persistent 4x SlowRank on one of 8 cell-partitioned ranks;
//      TTS per mitigation mode. Both mitigations together must recover >= 2x
//      of the unmitigated time-to-solution, every mode must land on the serial
//      answer bit-for-bit, and the slow-but-alive rank must never be evicted.
//      Fault-free runs must charge nothing outside the new phases.
//   2. JitterKernel on the band-partitioned solver: random per-step slowdowns
//      are observed (counted) and never perturb the numerics.
//   3. HangExchange on the cell-partitioned solver: an unwatched hang blocks
//      for the full stall; the deadline watchdog bounds a transient hang to a
//      few deadline charges; a persistent hang escalates to eviction.
//   4. multi-GPU: a 4x-slow device is detected from per-device telemetry and
//      derated (weighted band rebalance on the same hardware).
//
// Usage: bench_straggler [--seed N] [--json BENCH_straggler.json]
// Exit status is nonzero if any PAPER-CHECK fails (the CI fault-sweep gate).
#include <memory>

#include "bte/direct_solver.hpp"
#include "bte/multi_gpu_solver.hpp"
#include "bte/partitioned_solver.hpp"
#include "bte/resilience.hpp"
#include "fig_common.hpp"
#include "runtime/fault.hpp"
#include "runtime/trace.hpp"

using namespace finch;
using namespace finch::bte;
using bench::bitwise_equal;
using bench::small_scenario;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::print_header("Straggler", "fail-slow defense: TTS vs slowdown, watchdogged hangs");
  bench::JsonBench json = bench::bench_json("bench_straggler", args);

  const BteScenario s = small_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  const int nparts = 8;
  const int nsteps = 32;
  const int victim = 2;
  const double slowdown = 4.0;
  json.set("nparts", nparts);
  json.set("nsteps", nsteps);
  json.set("slowdown", slowdown);

  DirectSolver serial(s, phys);
  serial.run(nsteps);
  const auto& truth_T = serial.temperature();
  const auto truth_I = serial.intensity();

  // The headline experiment needs compute to dominate the (latency-bound)
  // halo exchanges, otherwise Amdahl caps what any compute-side mitigation
  // can recover. 8x the cells of small_scenario() buys that headroom while
  // the halo payloads stay in the latency regime.
  BteScenario big = small_scenario();
  big.nx = 64;
  big.ny = 48;
  DirectSolver big_serial(big, phys);
  big_serial.run(nsteps);
  const auto& big_truth_T = big_serial.temperature();
  const auto big_truth_I = big_serial.intensity();

  // ---- 1. headline: TTS per mitigation mode, 4x SlowRank on 1 of 8 ranks ----
  std::printf("\nTTS vs mitigation mode (cell, %d ranks, rank %d is %gx slow)\n", nparts, victim,
              slowdown);
  std::printf("%-10s %12s %9s %9s %9s %9s %8s\n", "mode", "tts(ms)", "specs", "rebal",
              "evicted", "recover", "exact");

  struct Mode {
    const char* name;
    bool enabled, spec, reb;
  };
  const Mode modes[] = {
      {"off", false, false, false},
      {"spec", true, true, false},
      {"rebalance", true, false, true},
      {"both", true, true, true},
  };
  double tts[4] = {0, 0, 0, 0};
  bool all_exact = true;
  bool never_evicted = true;
  // The virtual clock is driven by measured sweep times, so host frequency
  // drift between two back-to-back runs skews their TTS ratio. Two antidotes:
  // take the min over repetitions (a throttled episode inflates a run, never
  // deflates it), and interleave the modes round-robin so no mode's triple
  // sits inside one thermal episode.
  const int reps = 3;
  ResilienceStats best_rs[4];
  for (int rep = 0; rep < reps; ++rep) {
    for (int m = 0; m < 4; ++m) {
      CellPartitionedSolver part(big, phys, nparts);
      ResilienceOptions opt;
      opt.straggler.enabled = modes[m].enabled;
      opt.straggler.speculation = modes[m].spec;
      opt.straggler.rebalance = modes[m].reb;
      part.enable_resilience(opt);
      part.inject_slow_rank(victim, slowdown);
      part.run(nsteps);

      const bool exact = bitwise_equal(part.gather_temperature(), big_truth_T) &&
                         bitwise_equal(part.gather_intensity(), big_truth_I);
      all_exact = all_exact && exact;
      never_evicted = never_evicted && part.resilience_stats().evictions == 0;
      if (rep == 0 || part.phases().total() < tts[m]) {
        tts[m] = part.phases().total();
        best_rs[m] = part.resilience_stats();
      }
    }
  }
  for (int m = 0; m < 4; ++m) {
    const ResilienceStats& rs = best_rs[m];
    const double recover = tts[m] > 0 ? tts[0] / tts[m] : 0.0;

    std::printf("%-10s %12.4f %9lld %9lld %9lld %8.2fx %8s\n", modes[m].name, tts[m] * 1e3,
                static_cast<long long>(rs.speculations), static_cast<long long>(rs.rebalances),
                static_cast<long long>(rs.evictions), recover, all_exact ? "yes" : "NO");

    json.begin_row();
    json.cell("experiment", 1);
    json.cell("mode", m);
    json.cell("tts_s", tts[m]);
    json.cell("speculations", static_cast<double>(rs.speculations));
    json.cell("rebalances", static_cast<double>(rs.rebalances));
    json.cell("evictions", static_cast<double>(rs.evictions));
    json.cell("speculation_s", rs.speculation_seconds);
    json.cell("rebalance_s", rs.rebalance_seconds);
    json.cell("recovery_factor", recover);
    json.cell("bit_exact", all_exact ? 1.0 : 0.0);
  }

  bench::check(all_exact, "every mitigation mode lands on the serial answer bit-for-bit");
  bench::check(never_evicted, "a slow-but-alive rank is mitigated, never evicted");
  bench::check(tts[1] < tts[0] && tts[2] < tts[0],
               "each mitigation alone beats the unmitigated time-to-solution");
  bench::check(tts[3] > 0 && tts[0] / tts[3] >= 2.0,
               "both mitigations recover >= 2x TTS vs unmitigated under a 4x straggler");

  // ---- fault-free overhead: the defense must be free when nothing is slow ----
  {
    bool clean = true;
    for (const bool armed : {false, true}) {
      CellPartitionedSolver part(s, phys, 4);
      ResilienceOptions opt;
      opt.straggler.enabled = armed;
      // Telemetry is measured wall time, so OS jitter on a loaded host can
      // mimic a straggler. The invariant here is that an armed-but-idle
      // defense charges nothing, so put the trip point beyond any scheduler
      // noise; false-positive behavior at realistic thresholds is covered by
      // the never-evicted checks above.
      opt.straggler.slow_ratio = 1e6;
      opt.straggler.clip_ratio = 2e6;
      part.enable_resilience(opt);
      part.run(nsteps);
      const rt::PhaseTimes& ph = part.phases();
      const ResilienceStats& rs = part.resilience_stats();
      clean = clean && ph.speculation == 0.0 && ph.rebalance == 0.0 && ph.recovery == 0.0 &&
              ph.redistribution == 0.0 && rs.speculations == 0 && rs.rebalances == 0 &&
              rs.evictions == 0 && bitwise_equal(part.gather_temperature(), truth_T);
    }
    bench::check(clean, "fault-free: zero cost outside the new phases, armed or not, and no "
                        "false-positive mitigation");
  }

  // ---- 2. JitterKernel: random per-step slowdowns, band solver ---------------
  {
    rt::FaultInjector inj(args.seed);
    rt::FaultPolicy p;
    p.every = 3;
    inj.set_policy(rt::FaultKind::JitterKernel, p);
    BandPartitionedSolver band(s, phys, 4);
    ResilienceOptions opt;
    opt.injector = &inj;
    opt.straggler.enabled = true;
    band.enable_resilience(opt);
    band.run(nsteps);
    const ResilienceStats& rs = band.resilience_stats();
    const bool exact = bitwise_equal(band.temperature(), truth_T) &&
                       bitwise_equal(band.gather_intensity(), truth_I);
    std::printf("\njitter     %12.4f ms, %lld jitter events, exact=%s\n",
                band.phases().total() * 1e3, static_cast<long long>(rs.jitter_events),
                exact ? "yes" : "NO");
    json.begin_row();
    json.cell("experiment", 2);
    json.cell("jitter_events", static_cast<double>(rs.jitter_events));
    json.cell("tts_s", band.phases().total());
    json.cell("bit_exact", exact ? 1.0 : 0.0);
    bench::check(exact && rs.jitter_events > 0,
                 "kernel jitter stretches the clock, is counted, and never touches the numerics");
  }

  // ---- 3. HangExchange: unwatched stall vs deadline watchdog vs escalation ---
  {
    std::printf("\nhang handling (cell, %d ranks)\n", 4);
    double tts_hang[3] = {0, 0, 0};
    bool hang_exact = true;
    int64_t escalations = 0, hang_evictions = 0, timeouts = 0;
    for (int mode = 0; mode < 3; ++mode) {
      // mode 0: defense off (unwatched 10 ms stall); 1: watchdog, transient
      // hang (one deadline, clean retry); 2: watchdog, persistent hang
      // (deadline x miss_threshold, then escalate to eviction).
      rt::FaultInjector inj(args.seed);
      rt::FaultPolicy hang;
      hang.every = 1;
      hang.first_event = 3;
      hang.max_injections = 1;
      inj.set_site_policy(rt::FaultKind::HangExchange, "exchange", hang);
      if (mode == 2) {
        rt::FaultPolicy again;
        again.every = 1;
        inj.set_site_policy(rt::FaultKind::HangExchange, "exchange-retry", again);
      }
      CellPartitionedSolver part(s, phys, 4);
      ResilienceOptions opt;
      opt.injector = &inj;
      opt.checkpoint.interval = 6;
      opt.straggler.enabled = mode > 0;
      part.enable_resilience(opt);
      part.run(nsteps);
      const ResilienceStats& rs = part.resilience_stats();
      tts_hang[mode] = part.phases().total();
      hang_exact = hang_exact && bitwise_equal(part.gather_temperature(), truth_T);
      if (mode == 1) timeouts = rs.hang_timeouts;
      if (mode == 2) {
        escalations = rs.hang_escalations;
        hang_evictions = rs.evictions;
      }
      std::printf("%-10s %12.4f ms, %lld hangs, %lld timeouts, %lld escalations, %lld evicted\n",
                  mode == 0 ? "unwatched" : (mode == 1 ? "watchdog" : "persistent"),
                  tts_hang[mode] * 1e3, static_cast<long long>(rs.hang_events),
                  static_cast<long long>(rs.hang_timeouts),
                  static_cast<long long>(rs.hang_escalations),
                  static_cast<long long>(rs.evictions));
      json.begin_row();
      json.cell("experiment", 3);
      json.cell("mode", mode);
      json.cell("tts_s", tts_hang[mode]);
      json.cell("hang_events", static_cast<double>(rs.hang_events));
      json.cell("hang_timeouts", static_cast<double>(rs.hang_timeouts));
      json.cell("hang_escalations", static_cast<double>(rs.hang_escalations));
      json.cell("evictions", static_cast<double>(rs.evictions));
      json.cell("bit_exact", hang_exact ? 1.0 : 0.0);
    }
    bench::check(hang_exact, "every hang outcome lands on the fault-free answer bit-for-bit");
    bench::check(timeouts >= 1 && tts_hang[1] < tts_hang[0],
                 "the deadline watchdog bounds a transient hang below the unwatched stall");
    bench::check(escalations >= 1 && hang_evictions >= 1,
                 "a persistent hang is escalated from slow to dead and evicted");
  }

  // ---- 4. multi-GPU: slow device detected from telemetry and derated ---------
  {
    double tts_gpu[2] = {0, 0};
    bool gpu_exact = true;
    int64_t gpu_rebalances = 0, gpu_evictions = 0;
    // Twice the steps of the other experiments: the detector needs a few
    // steps to convict and each re-derate pays a copy charge, so the longer
    // horizon is what amortizes mitigation into a clear TTS win.
    const int gpu_steps = nsteps * 2;
    DirectSolver gpu_serial(s, phys);
    gpu_serial.run(gpu_steps);
    for (const bool armed : {false, true}) {
      // Min-of-reps for the same reason as the headline: host frequency drift
      // between the off and armed runs would otherwise dominate the margin.
      ResilienceStats best_rs;
      for (int rep = 0; rep < 3; ++rep) {
        MultiGpuSolver multi(s, phys, 4);
        ResilienceOptions opt;
        opt.straggler.enabled = armed;
        multi.enable_resilience(opt);
        multi.inject_slow_device(2, slowdown);
        multi.run(gpu_steps);
        gpu_exact = gpu_exact && bitwise_equal(multi.temperature(), gpu_serial.temperature()) &&
                    bitwise_equal(multi.gather_intensity(), gpu_serial.intensity());
        const size_t slot = armed ? 1 : 0;
        if (rep == 0 || multi.phases().total() < tts_gpu[slot]) {
          tts_gpu[slot] = multi.phases().total();
          best_rs = multi.resilience_stats();
        }
      }
      if (armed) {
        gpu_rebalances = best_rs.rebalances;
        gpu_evictions = best_rs.evictions;
      }
      json.begin_row();
      json.cell("experiment", 4);
      json.cell("armed", armed ? 1.0 : 0.0);
      json.cell("tts_s", tts_gpu[armed ? 1 : 0]);
      json.cell("rebalances", static_cast<double>(best_rs.rebalances));
      json.cell("speculations", static_cast<double>(best_rs.speculations));
      json.cell("bit_exact", gpu_exact ? 1.0 : 0.0);
    }
    std::printf("\nmulti-gpu  off %.4f ms -> defended %.4f ms, %lld rebalances, exact=%s\n",
                tts_gpu[0] * 1e3, tts_gpu[1] * 1e3, static_cast<long long>(gpu_rebalances),
                gpu_exact ? "yes" : "NO");
    bench::check(gpu_exact && gpu_evictions == 0,
                 "the slow device is derated bit-exactly and never evicted");
    bench::check(gpu_rebalances >= 1 && tts_gpu[1] < tts_gpu[0],
                 "per-device telemetry detects the 4x device and the derate beats no defense");
  }

  // ---- 5. observability: trace spans reconcile with the phase breakdowns -----
  // The bugfix regression this experiment pins down: speculation used to be
  // charged *uncapped* to resilience_stats().speculation_seconds while the
  // phase breakdown carried the capped charge, so the stats block drifted
  // above the breakdown (and the breakdown total above the BSP clock check)
  // whenever a speculative helper overran the step it covered.
  {
    rt::TraceConfig tcfg;
    tcfg.enabled = true;
    rt::Tracer::global().configure(tcfg);

    // Cell solver, full defense, 4x slow rank: every virtual-time charge
    // emits a span, so per-phase span sums must reproduce phases() and the
    // phase total must reproduce the BSP clock.
    CellPartitionedSolver part(big, phys, nparts);
    part.set_trace_track(300, "cell reconcile");
    ResilienceOptions opt;
    opt.straggler.enabled = true;
    part.enable_resilience(opt);
    part.inject_slow_rank(victim, slowdown);
    part.run(nsteps);
    const rt::PhaseTimes& ph = part.phases();
    const auto spans = bench::span_seconds(300);
    const auto span_of = [&spans](const char* name) {
      return spans.count(name) ? spans.at(name) : 0.0;
    };
    // fault_stall spans nest inside communication and are excluded: they are
    // an attribution overlay, not an additive phase.
    double span_total = 0;
    for (const auto& [name, sec] : spans)
      if (name != "fault_stall") span_total += sec;
    // total() re-sums per-phase buckets while the clock accumulated the same
    // charges in arrival order, so equality holds to FP associativity — a
    // 1e-9% (1e-11 relative) bar, vastly tighter than any real drift.
    const bool cell_clock_ok = bench::within_pct(ph.total(), part.virtual_elapsed(), 1e-9);
    const bool cell_spans_ok =
        bench::within_pct(span_of("compute"), ph.compute, 1.0) &&
        bench::within_pct(span_of("post_process"), ph.post_process, 1.0) &&
        bench::within_pct(span_of("communication"), ph.communication, 1.0) &&
        bench::within_pct(span_of("speculation"), ph.speculation, 1.0) &&
        bench::within_pct(span_of("rebalance"), ph.rebalance, 1.0) &&
        bench::within_pct(span_total, ph.total(), 1.0);
    std::printf("\nreconcile  cell: phases %.4f ms, spans %.4f ms, bsp clock %.4f ms\n",
                ph.total() * 1e3, span_total * 1e3, part.virtual_elapsed() * 1e3);
    bench::check(cell_clock_ok,
                 "cell phase breakdown total equals the BSP clock (to FP round-off)");
    bench::check(cell_spans_ok, "cell per-phase trace spans reconcile with phases() (<=1%)");

    // Multi-GPU with speculation armed: the speculation stat must carry the
    // same (capped) seconds as the phase breakdown, and the phase-span sum
    // must reproduce phases().total().
    MultiGpuSolver multi(s, phys, 4);
    multi.set_trace_track(301, "mgpu reconcile");
    ResilienceOptions gopt;
    gopt.straggler.enabled = true;
    gopt.straggler.rebalance = false;  // keep the straggler slow so speculation fires
    multi.enable_resilience(gopt);
    multi.inject_slow_device(2, slowdown);
    multi.run(nsteps * 2);
    const MultiGpuSolver::Phases& gp = multi.phases();
    const auto gspans = bench::span_seconds(301);
    double gspan_total = 0;
    for (const auto& [name, sec] : gspans) gspan_total += sec;
    std::printf("reconcile  mgpu: phases %.4f ms, spans %.4f ms, speculation stat %.6f ms "
                "vs phase %.6f ms\n",
                gp.total() * 1e3, gspan_total * 1e3,
                multi.resilience_stats().speculation_seconds * 1e3, gp.speculation * 1e3);
    bench::check(multi.resilience_stats().speculations > 0 && gp.speculation > 0,
                 "multi-GPU speculation engaged under the 4x device");
    bench::check(multi.resilience_stats().speculation_seconds == gp.speculation,
                 "speculation stat carries the charged (capped) seconds, not the helper "
                 "overshoot (regression)");
    bench::check(bench::within_pct(gspan_total, gp.total(), 1.0) &&
                     bench::within_pct(gp.total(), multi.virtual_elapsed(), 1.0),
                 "multi-GPU phase spans reconcile with phases().total() (<=1%)");

    json.begin_row();
    json.cell("experiment", 5);
    json.cell("cell_phase_total_s", ph.total());
    json.cell("cell_span_total_s", span_total);
    json.cell("mgpu_phase_total_s", gp.total());
    json.cell("mgpu_span_total_s", gspan_total);
    json.cell("mgpu_speculation_s", gp.speculation);
  }

  std::printf("\n");
  return bench::finish_bench(json, args);
}
