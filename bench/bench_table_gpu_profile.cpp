// §III.D profiling table: the paper reports for the single-GPU run
//   SM utilization    86%
//   memory throughput 11%
//   FLOP performance  49% of (double-precision) peak
// This bench prints the simulated device's modeled counters for the same
// kernel, both from the analytic profile model and from actually running the
// DSL-generated interior kernel on the simulated device (small grid, same
// per-thread profile).
#include <memory>

#include "bte/bte_problem.hpp"
#include "fig_common.hpp"

using namespace finch;
using namespace finch::perf;

int main() {
  bench::print_header("SectionIII.D table", "single-GPU kernel profiling counters");
  const Workload w = Workload::paper();
  const ModelConfig m;

  const GpuProfile prof = model_gpu_profile(w, m);
  std::printf("%-22s %10s %10s\n", "counter", "paper", "model");
  std::printf("%-22s %9.0f%% %9.0f%%\n", "SM utilization", 86.0, 100 * prof.sm_utilization);
  std::printf("%-22s %9.0f%% %9.0f%%\n", "memory throughput", 11.0, 100 * prof.mem_fraction);
  std::printf("%-22s %9.0f%% %9.0f%%\n", "FLOP (DP peak)", 49.0, 100 * prof.flop_fraction);
  std::printf("kernel time per step (modeled): %.3f ms\n\n", prof.kernel_seconds_per_step * 1e3);

  bench::check(prof.sm_utilization > 0.7, "high SM utilization (paper: 86%)");
  bench::check(prof.mem_fraction < 0.3, "memory bandwidth far from saturated (paper: 11%)");
  bench::check(prof.flop_fraction > 0.3 && prof.flop_fraction < 0.75,
               "roughly half of DP peak achieved (paper: 49%)");
  bench::check(prof.flop_fraction > prof.mem_fraction, "kernel is compute-bound in double precision");

  // Cross-check with a real run of the generated kernel on the simulated
  // device (scaled-down grid; counters are per-launch ratios, not totals).
  bte::BteScenario s;
  s.nx = s.ny = 16;
  s.lx = s.ly = 80e-6;
  s.ndirs = 8;
  s.nbands = 8;
  s.nsteps = 5;
  auto phys = std::make_shared<const bte::BtePhysics>(s.nbands, s.ndirs);
  bte::BteProblem bp(s, phys);
  rt::SimGpu gpu(rt::GpuSpec::a6000());
  bp.problem().use_cuda(&gpu);
  bp.compile()->run(5);
  const auto& cnt = gpu.counters();
  std::printf("\nexecuted generated kernel on simulated A6000 (16x16 grid, 5 steps):\n");
  std::printf("  launches %lld, SM util %.0f%%, FLOP %.0f%%, mem %.0f%%, H2D %.2f MB, D2H %.2f MB\n",
              static_cast<long long>(cnt.kernel_launches), 100 * cnt.sm_utilization,
              100 * cnt.flop_fraction, 100 * cnt.mem_fraction, cnt.bytes_h2d / 1e6,
              cnt.bytes_d2h / 1e6);
  bench::check(cnt.kernel_launches == 5, "one interior kernel launch per time step");
  return 0;
}
