// Fig. 4: "Comparison of band-parallel and cell-parallel strategies" —
// strong-scaling of the paper workload (120x120 cells, 20 dirs, 55 bands,
// 100 steps) from 1 to 320 processes, with the ideal-scaling line.
#include "fig_common.hpp"

using namespace finch;
using namespace finch::perf;

int main() {
  bench::print_header("Figure 4", "band-parallel vs cell-parallel strong scaling");
  const Workload w = Workload::paper();
  const CalibratedCosts c = bench::calibrated_costs();
  const ModelConfig m;

  std::printf("calibration: %.1f ns/DOF intensity, %.2f us/cell temperature\n\n",
              c.sec_per_dof_intensity * 1e9, c.sec_per_cell_temperature * 1e6);
  std::printf("%8s %16s %16s %16s\n", "procs", "bands [s]", "cells [s]", "ideal [s]");

  const double t1 = model_band_parallel(w, c, m, 1).total;
  std::vector<double> bands, cells;
  for (int p : bench::paper_proc_counts()) {
    const double tb = model_band_parallel(w, c, m, p).total;
    const double tc = model_cell_parallel(w, c, m, p).total;
    bands.push_back(tb);
    cells.push_back(tc);
    std::printf("%8d %16.3f %16.3f %16.3f\n", p, tb, tc, t1 / p);
  }

  std::printf("\n");
  const auto& procs = bench::paper_proc_counts();
  const size_t i320 = procs.size() - 1;
  bench::check(cells[i320] < bands[i320],
               "cell-parallel scales to 320 processes, past the band limit");
  bench::check(bands[3] / bands[0] < 0.2 || bands[0] / bands[3] > 5,
               "band-parallel shows near-ideal scaling at small counts");
  // Band curve saturates: 80 -> 320 gains little.
  bench::check(bands[i320] > 0.8 * bands[6], "band-parallel flattens beyond ~55 processes (55 bands)");
  // Cell-parallel pays more communication but keeps scaling.
  const auto b40 = model_band_parallel(w, c, m, 40);
  const auto c40 = model_cell_parallel(w, c, m, 40);
  bench::check(c40.communication > b40.communication,
               "cell-parallel has the higher communication cost (Fig. 3 discussion)");
  return 0;
}
