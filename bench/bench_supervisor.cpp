// Supervisor bench: multi-job goodput under fault pressure, plus the
// crash-restart acceptance run for the resilient job supervisor.
//
// Act 1 sweeps a deterministic mixed job stream (plain / chaos / flaky /
// poison / deadline jobs, see bte::SupervisorCampaign) through the supervisor
// at three fault densities — none, low, high — and reports throughput
// (jobs/sec wall), virtual time-to-terminal percentiles, and goodput
// (completed solver steps per virtual second, so retries, backoff and
// quarantined work all show up as lost goodput). Every stream must end with
// 100% of jobs in a terminal state, the campaign oracle clean (completed
// jobs bit-exact vs the fault-free reference), and zero step-0 replays:
// durable retries resume from the newest manifest checkpoint.
//
// Act 2 is the crash acceptance criterion: a child process runs a faulted
// campaign and SIGKILLs itself from inside a manifest-commit window; the
// parent restarts a fresh supervisor on the same durable root, re-adopts
// every orphaned job, drains them to terminal states, and the oracle must
// hold across the restart — completed-before-death jobs stay terminal on
// disk, adopted in-flight jobs resume instead of replaying from step 0.
//
// Act 3 is the ISSUE-9 overload acceptance: the same job mix first runs
// serially through the PR-8 supervisor (calibrating the scheduler's cost
// model from its virtual clock), then arrives open-loop at 2x the service
// capacity of a 4-slot scheduler across 3 equal-weight tenants with a
// bounded queue. The extended oracle must hold — 100% of admitted jobs
// terminal, every tenant's goodput >= 60% of its fair share, sheds strictly
// lowest-priority-first, zero starvation-watchdog violations — and the
// scheduler's virtual-clock throughput must be >= 2x the serial supervisor's
// on the same mix.
//
// Usage: bench_supervisor [--njobs N] [--seed N] [--json FILE]
//                         [--metrics-json FILE] [--trace FILE]
// FINCH_BENCH_FAST=1 (or --njobs 20) shrinks the stream for PR-time CI.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bte/supervisor_campaign.hpp"
#include "fig_common.hpp"
#include "runtime/checkpoint.hpp"
#include "svc/job_file.hpp"
#include "svc/supervisor.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#define FINCH_HAVE_FORK 1
#endif

using namespace finch;
using namespace finch::bte;

using bench::check;
using bench::small_scenario;

namespace {

struct Density {
  const char* name;
  StreamShape shape;  // njobs filled in by main
};

std::vector<Density> densities() {
  Density none{"none", {}};
  none.shape.chaos_fraction = 0.0;
  none.shape.deadline_fraction = 0.0;
  none.shape.flaky_fraction = 0.0;
  none.shape.poison_fraction = 0.0;
  Density low{"low", {}};
  low.shape.chaos_fraction = 0.15;
  low.shape.deadline_fraction = 0.05;
  low.shape.flaky_fraction = 0.05;
  low.shape.poison_fraction = 0.02;
  Density high{"high", {}};  // StreamShape defaults are the high-density mix
  return {none, low, high};
}

std::string fresh_root(const std::string& name) {
  const std::string root = "supervisor_bench_" + name;
#if defined(__unix__) || defined(__APPLE__)
  const std::string cmd = "rm -rf " + root;
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
#endif
  return root;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

// Completed solver steps per virtual second across the whole stream — the
// bench's goodput: faults, retries and backoff spend virtual time without
// adding completed steps.
double goodput(const SupervisorReport& rep, double virtual_total_s) {
  int64_t completed_steps = 0;
  for (const svc::JobOutcome& o : rep.outcomes)
    if (o.state == svc::TerminalState::Completed) completed_steps += o.final_step;
  return virtual_total_s > 0 ? static_cast<double>(completed_steps) / virtual_total_s : 0.0;
}

#ifdef FINCH_HAVE_FORK

// Child: submit the whole stream, start draining, and die from inside the
// Nth manifest-commit window — mid-job, checkpoints already durable.
void run_child_until_kill(const BteScenario& base, const svc::SupervisorOptions& opt,
                          const std::vector<svc::JobSpec>& jobs, int kill_at_commit) {
  static int commits = 0;
  static int target = 0;
  target = kill_at_commit;
  rt::set_checkpoint_commit_hook([](const std::string& path, rt::CommitPhase phase) {
    if (phase != rt::CommitPhase::AfterRename) return;
    if (path.find("manifest.json") == std::string::npos) return;
    if (++commits == target) ::raise(SIGKILL);
  });
  svc::Supervisor sup(base, opt);
  for (const svc::JobSpec& j : jobs) sup.submit(j);
  (void)sup.drain();
  ::_exit(41);  // the kill point never fired: distinct failure code
}

bool crash_child(const BteScenario& base, const svc::SupervisorOptions& opt,
                 const std::vector<svc::JobSpec>& jobs, int kill_at_commit) {
  std::fflush(stdout);
  const pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    run_child_until_kill(base, opt, jobs, kill_at_commit);
    ::_exit(40);  // unreachable
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return false;
  return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

#endif  // FINCH_HAVE_FORK

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const bool fast = std::getenv("FINCH_BENCH_FAST") != nullptr;
  int njobs = fast ? 20 : 210;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--njobs" && i + 1 < argc) njobs = std::atoi(argv[i + 1]);

  bench::print_header("Supervisor",
                      "multi-job goodput under fault pressure + crash-restart adoption");
  bench::JsonBench json = bench::bench_json("bench_supervisor", args);
  json.set("njobs", njobs);

  const BteScenario base = small_scenario();
  SupervisorCampaign campaign(base);

  // ---- act 1: fault-density sweep ------------------------------------------
  std::printf("%-6s %6s %8s %10s %10s %10s %6s %5s %5s %5s %5s\n", "chaos", "jobs", "jobs/s",
              "p50-ttt", "p99-ttt", "goodput", "fault", "done", "canc", "quar", "shed");
  SupervisorReport high_rep;
  for (const Density& d : densities()) {
    StreamShape shape = d.shape;
    shape.njobs = njobs;
    svc::SupervisorOptions opt;
    opt.durable_root = fresh_root(d.name);
    svc::Supervisor sup(base, opt);
    const std::vector<svc::JobSpec> jobs = campaign.mixed_stream(args.seed, shape);

    const auto t0 = std::chrono::steady_clock::now();
    const SupervisorReport rep = campaign.run_stream(sup, jobs);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    std::vector<double> ttt;
    for (const svc::JobOutcome& o : rep.outcomes) ttt.push_back(o.time_to_terminal_s);
    const double jobs_per_s = wall_s > 0 ? static_cast<double>(rep.total) / wall_s : 0.0;
    const double p50 = percentile(ttt, 0.50), p99 = percentile(ttt, 0.99);
    const double gp = goodput(rep, sup.virtual_now());
    std::printf("%-6s %6d %8.1f %9.2es %9.2es %10.1f %6d %5d %5d %5d %5d\n", d.name, rep.total,
                jobs_per_s, p50, p99, gp, rep.faulted_jobs, rep.completed, rep.cancelled,
                rep.quarantined, rep.shed);
    for (const std::string& v : rep.violations) std::printf("  VIOLATION %s\n", v.c_str());

    check(rep.nonterminal == 0,
          std::string(d.name) + ": 100% of jobs reached a terminal state");
    check(rep.ok(), std::string(d.name) + ": campaign oracle clean (completed jobs bit-exact, " +
                        std::to_string(rep.violations.size()) + " violations)");
    check(rep.step0_replays == 0,
          std::string(d.name) + ": no durable retry replayed from step 0");
    if (std::string(d.name) == "none")
      check(rep.completed == rep.total, "fault-free stream completes every job");
    if (std::string(d.name) == "high") high_rep = rep;

    json.begin_row();
    json.cell("density", d.name[0] == 'n' ? 0 : (d.name[0] == 'l' ? 1 : 2));
    json.cell("jobs", rep.total);
    json.cell("jobs_per_sec_wall", jobs_per_s);
    json.cell("p50_time_to_terminal_s", p50);
    json.cell("p99_time_to_terminal_s", p99);
    json.cell("goodput_steps_per_vsec", gp);
    json.cell("faulted", rep.faulted_jobs);
    json.cell("completed", rep.completed);
    json.cell("cancelled", rep.cancelled);
    json.cell("quarantined", rep.quarantined);
    json.cell("shed", rep.shed);
    json.cell("retried", rep.retried_jobs);
    json.cell("resumed_retries", rep.resumed_retries);
    json.cell("violations", static_cast<double>(rep.violations.size()));
  }
  // The ISSUE-8 soak criterion: at high density at least 30% of the stream
  // carries a fault schedule, and every retry that follows a durable
  // checkpoint resumes from the manifest (counted above as step0_replays=0).
  check(high_rep.faulted_jobs * 100 >= 30 * high_rep.total,
        "high density: >= 30% of jobs faulted (" + std::to_string(high_rep.faulted_jobs) + "/" +
            std::to_string(high_rep.total) + ")");
  if (high_rep.retried_jobs > 0)
    check(high_rep.resumed_retries > 0,
          "high density: retried jobs resumed from durable manifests (" +
              std::to_string(high_rep.resumed_retries) + " resumed retries)");
  if (njobs >= 100) {
    check(high_rep.retried_jobs > 0, "high density: the stream exercised supervisor retries");
    check(high_rep.quarantined > 0, "high density: the stream tripped the poison breaker");
    check(high_rep.cancelled > 0, "high density: the stream drained deadline jobs");
  }

  // ---- act 2: SIGKILL the supervisor mid-campaign, restart, re-adopt -------
#ifdef FINCH_HAVE_FORK
  {
    const int kill_jobs = fast ? 10 : 24;
    StreamShape shape;  // high-density defaults
    shape.njobs = kill_jobs;
    svc::SupervisorOptions opt;
    opt.durable_root = fresh_root("kill");
    const std::vector<svc::JobSpec> jobs =
        campaign.mixed_stream(args.seed ^ 0x5eedULL, shape);
    // Far enough in that several jobs are already terminal and one is mid-run
    // with durable checkpoints, early enough that a tail of jobs is queued.
    const int kill_at_commit = 2 * kill_jobs;
    const bool killed = crash_child(base, opt, jobs, kill_at_commit);
    check(killed, "child supervisor died by SIGKILL inside a manifest-commit window");

    int terminal_before = 0;
    for (const svc::JobSpec& j : jobs)
      if (svc::file_exists(opt.durable_root + "/" + j.id + "/terminal.json")) ++terminal_before;

    svc::Supervisor restarted(base, opt);
    const std::vector<std::string> adopted = restarted.adopt_orphans();
    check(!adopted.empty() && terminal_before + static_cast<int>(adopted.size()) ==
                                  static_cast<int>(jobs.size()),
          "restart accounts for every job: " + std::to_string(terminal_before) +
              " terminal before death + " + std::to_string(adopted.size()) + " adopted");

    const std::vector<svc::JobOutcome> outcomes = restarted.drain();
    std::vector<svc::JobSpec> adopted_specs;
    for (const svc::JobSpec& j : jobs)
      for (const std::string& id : adopted)
        if (j.id == id) adopted_specs.push_back(j);
    const SupervisorReport rep = campaign.judge(adopted_specs, outcomes, restarted.options());
    for (const std::string& v : rep.violations) std::printf("  VIOLATION %s\n", v.c_str());
    int resumed_adopted = 0;
    for (const svc::JobOutcome& o : outcomes)
      if (!o.attempts.empty() && o.attempts.front().resumed) ++resumed_adopted;
    std::printf("crash restart: %d terminal before death, %zu adopted, %d resumed from "
                "manifests, %d completed after restart\n",
                terminal_before, adopted.size(), resumed_adopted, rep.completed);
    check(rep.nonterminal == 0 && rep.ok(),
          "every re-adopted job reached a terminal state with the oracle intact");
    check(resumed_adopted > 0,
          "the in-flight job resumed from its durable manifest after the restart");
    json.set("kill_jobs", kill_jobs);
    json.set("kill_terminal_before", terminal_before);
    json.set("kill_adopted", static_cast<double>(adopted.size()));
    json.set("kill_resumed_adopted", resumed_adopted);
    json.set("kill_completed_after", rep.completed);
  }
#else
  std::printf("fork() unavailable on this platform; crash-restart act skipped\n");
#endif

  // ---- act 3: overload — 2x capacity, 3 tenants, bounded queue -------------
  {
    OverloadShape oshape;
    oshape.njobs = fast ? 60 : 300;
    const int mc = 4;

    // Serial baseline: the PR-8 supervisor runs the identical job mix one
    // attempt at a time. Its virtual clock calibrates the scheduler's cost
    // model, so the two throughput numbers share one currency. The default
    // retry backoff (0.5 s base) was tuned for much larger jobs; these run
    // in tens of milliseconds, so both runs scale the policy to the job
    // scale — otherwise backoff tails, not service, dominate both clocks.
    svc::RetryPolicy retry;
    retry.backoff_base_s = 0.002;
    retry.backoff_max_s = 0.032;
    const std::vector<svc::Arrival> shape_only =
        campaign.overload_stream(args.seed, oshape, svc::SchedulerOptions{}.cost_per_unit_s, mc);
    svc::SupervisorOptions serial_opt;
    serial_opt.durable_root = fresh_root("overload_serial");
    serial_opt.retry = retry;
    svc::Supervisor serial(base, serial_opt);
    double offered_units = 0.0;
    for (const svc::Arrival& a : shape_only) {
      offered_units += static_cast<double>(a.spec.nsteps) * a.spec.nx * a.spec.ny *
                       a.spec.ndirs * a.spec.nbands;
      serial.submit(a.spec);
    }
    double serial_completed_units = 0.0;
    for (const svc::JobOutcome& o : serial.drain())
      if (o.state == svc::TerminalState::Completed)
        serial_completed_units += static_cast<double>(o.spec.nsteps) * o.spec.nx * o.spec.ny *
                                  o.spec.ndirs * o.spec.nbands;
    const double serial_vt = serial.virtual_now();
    const double serial_tp = serial_vt > 0 ? serial_completed_units / serial_vt : 0.0;
    const double cpu_cal = offered_units > 0 ? serial_vt / offered_units : 5e-9;

    svc::SchedulerOptions opt;
    opt.supervisor.durable_root = fresh_root("overload");
    opt.supervisor.retry = retry;
    opt.max_concurrency = mc;
    opt.queue_capacity = fast ? 12 : 24;
    opt.cost_per_unit_s = cpu_cal;
    const std::vector<svc::Arrival> arrivals =
        campaign.overload_stream(args.seed, oshape, cpu_cal, mc);
    svc::Scheduler sched(base, opt);
    const auto t0 = std::chrono::steady_clock::now();
    const svc::ScheduleResult res = sched.run(arrivals);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    const OverloadReport rep = campaign.judge_overload(arrivals, res, opt, 0.60);
    for (const std::string& v : rep.violations) std::printf("  VIOLATION %s\n", v.c_str());
    for (const std::string& v : rep.base.violations) std::printf("  VIOLATION %s\n", v.c_str());

    double sched_completed_units = 0.0;
    for (const auto& [name, ledger] : res.stats.tenants)
      sched_completed_units += ledger.completed_units;
    const double sched_tp = res.stats.drain_vtime_s > 0
                                ? sched_completed_units / res.stats.drain_vtime_s
                                : 0.0;
    const double speedup = serial_tp > 0 ? sched_tp / serial_tp : 0.0;
    std::printf("overload: %d arrivals (%d adm, %d rej, %d shed), %d slots, queue %d, "
                "%.1f s wall\n",
                rep.arrivals, rep.admitted, rep.rejected, rep.shed_overload, mc,
                opt.queue_capacity, wall_s);
    std::printf("          fairness min %.2f, %d boosts, %d violations, %d storm-damped, "
                "virtual throughput %.3g vs serial %.3g units/s (%.2fx)\n",
                rep.min_fair_share_ratio, res.stats.watchdog_boosts,
                res.stats.watchdog_violations, res.stats.storm_damped, sched_tp, serial_tp,
                speedup);

    check(rep.base.nonterminal == 0, "overload: 100% of admitted jobs reached a terminal state");
    check(rep.ok(), "overload: extended oracle clean (" +
                        std::to_string(rep.violations.size() + rep.base.violations.size()) +
                        " violations)");
    check(rep.min_fair_share_ratio >= 0.60,
          "overload: no tenant's goodput below 60% of fair share");
    check(res.stats.watchdog_violations == 0, "overload: the starvation watchdog never fired");
    check(speedup >= 2.0, "overload: scheduler throughput >= 2x serial supervisor (" +
                              std::to_string(speedup) + "x)");

    json.set("overload_jobs", oshape.njobs);
    json.set("overload_admitted", rep.admitted);
    json.set("overload_rejected", rep.rejected);
    json.set("overload_shed", rep.shed_overload);
    json.set("overload_min_fair_share", rep.min_fair_share_ratio);
    json.set("overload_watchdog_boosts", res.stats.watchdog_boosts);
    json.set("overload_watchdog_violations", res.stats.watchdog_violations);
    json.set("overload_speedup_vs_serial", speedup);
    json.set("overload_wall_s", wall_s);
    json.set("overload_drain_vtime_s", res.stats.drain_vtime_s);
    json.set("overload_serial_vtime_s", serial_vt);
    json.set("overload_offered_units", offered_units);
    json.set("overload_completed_units", sched_completed_units);
    json.set("overload_serial_completed_units", serial_completed_units);
  }

  return bench::finish_bench(json, args);
}
