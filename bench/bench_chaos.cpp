// Chaos campaign bench: survival under composed multi-class fault schedules.
//
// Sweeps a seeded campaign of generated schedules — each mixing transient,
// permanent, silent and performance faults — over all three distributed
// solvers at graded fault density, and reports survival rate and the
// recovery-time distribution per (solver, density). The recovery oracle per
// run demands bit-exactness against the fault-free reference, finite fields,
// a conserved phase ledger and a fully accounted injection log.
//
// The second act demonstrates the shrinker: an over-dense schedule replayed
// against a deliberately fragile defense (no rollback budget) fails, and
// delta debugging reduces it to a minimal replayable repro (<= 5 faults)
// that round-trips through JSON.
//
// Usage: bench_chaos [--seed N] [--json BENCH_chaos.json]
//                    [--metrics-json FILE] [--trace FILE]
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bte/chaos_campaign.hpp"
#include "fig_common.hpp"
#include "runtime/chaos.hpp"

using namespace finch;
using namespace finch::bte;

using bench::check;
using bench::small_scenario;

namespace {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::print_header("Chaos", "survival + recovery time under composed fault schedules");
  bench::JsonBench json = bench::bench_json("bench_chaos", args);

  const BteScenario s = small_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);

  const rt::ChaosEngine engine(args.seed);
  ChaosCampaign campaign(s, phys);

  const char* solvers[] = {"cell", "band", "mgpu"};
  const double densities[] = {0.5, 1.0, 2.0};
  const int per_campaign = 24;  // 3 solvers x 3 densities x 24 = 216 schedules

  std::printf("%-6s %8s %10s %9s %8s %10s %10s %11s %11s\n", "solver", "density", "schedules",
              "survived", "faults", "rollbacks", "evictions", "rec-p50(us)", "rec-p99(us)");

  int64_t total = 0, total_ok = 0, min_classes_seen = 1 << 20;
  for (const char* solver : solvers) {
    for (const double density : densities) {
      rt::ChaosSpec spec;
      spec.density = density;
      const auto outcomes = campaign.run_campaign(engine, solver, spec, per_campaign);

      int64_t ok = 0, injected = 0, rollbacks = 0, evictions = 0;
      std::vector<double> rec;
      for (const ChaosOutcome& o : outcomes) {
        total += 1;
        ok += o.ok() ? 1 : 0;
        injected += o.injected;
        rollbacks += o.stats.rollbacks;
        evictions += o.stats.evictions;
        rec.push_back(o.recovery_virtual_seconds);
        min_classes_seen = std::min<int64_t>(min_classes_seen, o.schedule.num_classes());
        if (!o.ok()) {
          std::printf("  FAIL %s[%lld]: %s\n", solver, static_cast<long long>(o.schedule.index),
                      o.detail.c_str());
          const rt::ChaosSchedule min = campaign.shrink(o.schedule);
          const std::string path = "CHAOS_repro_" + std::string(solver) + "_" +
                                   std::to_string(o.schedule.index) + ".json";
          std::FILE* f = std::fopen(path.c_str(), "w");
          if (f != nullptr) {
            const std::string doc = rt::schedule_to_json(min);
            std::fwrite(doc.data(), 1, doc.size(), f);
            std::fclose(f);
            std::printf("  minimized repro (%zu faults) -> %s\n", min.faults.size(),
                        path.c_str());
          }
        }
      }
      total_ok += ok;
      const double p50 = percentile(rec, 0.50), p99 = percentile(rec, 0.99);
      std::printf("%-6s %8.2f %10d %9lld %8lld %10lld %10lld %11.2f %11.2f\n", solver, density,
                  per_campaign, static_cast<long long>(ok), static_cast<long long>(injected),
                  static_cast<long long>(rollbacks), static_cast<long long>(evictions), p50 * 1e6,
                  p99 * 1e6);

      json.begin_row();
      json.cell("solver", solver == solvers[0] ? 0 : (solver == solvers[1] ? 1 : 2));
      json.cell("density", density);
      json.cell("schedules", per_campaign);
      json.cell("survived", static_cast<double>(ok));
      json.cell("faults_injected", static_cast<double>(injected));
      json.cell("rollbacks", static_cast<double>(rollbacks));
      json.cell("evictions", static_cast<double>(evictions));
      json.cell("recovery_p50_s", p50);
      json.cell("recovery_p99_s", p99);
    }
  }

  check(total >= 200, "campaign size: " + std::to_string(total) + " schedules >= 200");
  check(min_classes_seen >= 3,
        "every schedule composes >= 3 fault classes (min seen " +
            std::to_string(min_classes_seen) + ")");
  check(total_ok == total, "100% survival: " + std::to_string(total_ok) + "/" +
                               std::to_string(total) +
                               " schedules recovered bit-exact with conserved phase ledgers");
  json.set("schedules_total", static_cast<double>(total));
  json.set("schedules_survived", static_cast<double>(total_ok));

  // Replay determinism: the same schedule twice must judge identically and
  // take the identical recovery trajectory — the property the shrinker and
  // the JSON repro artifacts stand on. (Virtual *seconds* are measured-time
  // based and are not compared; the discrete recovery decisions are.)
  {
    const rt::ChaosSchedule sched = engine.generate("cell", rt::ChaosSpec{}, 7);
    const ChaosOutcome a = campaign.run_schedule(sched);
    const ChaosOutcome b = campaign.run_schedule(sched);
    check(a.ok() && b.ok() && a.injected == b.injected &&
              a.stats.retries == b.stats.retries && a.stats.rollbacks == b.stats.rollbacks &&
              a.stats.evictions == b.stats.evictions &&
              a.stats.replayed_steps == b.stats.replayed_steps,
          "replay determinism: identical verdict, injections and recovery trajectory");
  }

  // ---- shrinker demonstration ----------------------------------------------
  // A fragile defense (zero rollback budget, no SDC/straggler layer) cannot
  // absorb detected corruption; an over-dense schedule fails and delta
  // debugging pares it down to the one fault class that kills it.
  {
    ChaosDefense fragile;
    fragile.max_rollbacks = 0;
    fragile.sdc = false;
    fragile.straggler = false;
    ChaosCampaign brittle(s, phys, fragile);

    rt::ChaosSchedule dense;
    dense.seed = args.seed;
    dense.index = 999;
    dense.solver = "cell";
    dense.nparts = 4;
    dense.nsteps = 24;
    dense.faults = {
        {rt::FaultKind::DroppedMessage, "halo", 1, 2, 4},
        {rt::FaultKind::SlowRank, "compute", 4, 1, 2},
        {rt::FaultKind::JitterKernel, "compute", 8, 3, 3},
        {rt::FaultKind::StuckRank, "exchange", 5, 2, 2},
        {rt::FaultKind::TransferCorruption, "halo", 2, 3, 6},
        {rt::FaultKind::DroppedMessage, "exchange", 9, 1, 3},
        {rt::FaultKind::JitterKernel, "compute", 30, 2, 2},
        {rt::FaultKind::DroppedMessage, "halo", 40, 1, 2},
    };
    const ChaosOutcome before = brittle.run_schedule(dense);
    check(!before.ok(), "over-dense schedule defeats the fragile defense (" + before.detail + ")");

    const rt::ChaosSchedule min = brittle.shrink(dense);
    std::printf("shrinker: %zu faults (%lld fires) -> %zu faults (%lld fires)\n",
                dense.faults.size(), static_cast<long long>(dense.total_fires()),
                min.faults.size(), static_cast<long long>(min.total_fires()));
    check(min.faults.size() <= 5, "minimized repro has <= 5 faults (got " +
                                      std::to_string(min.faults.size()) + ")");
    json.set("shrink_faults_before", static_cast<double>(dense.faults.size()));
    json.set("shrink_faults_after", static_cast<double>(min.faults.size()));

    // The repro is a replayable artifact: JSON round-trip, then re-fail.
    const std::string doc = rt::schedule_to_json(min);
    const rt::ChaosSchedule reparsed = rt::schedule_from_json(doc);
    const ChaosOutcome replay = brittle.run_schedule(reparsed);
    check(!replay.ok(), "minimized repro replayed from JSON still fails the oracle");
    std::printf("minimized repro:\n%s", doc.c_str());
  }

  return bench::finish_bench(json, args);
}
