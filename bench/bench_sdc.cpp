// SDC-defense bench: detection latency, audit overhead vs ABFT block size,
// and the cost of localized block repair vs checkpoint rollback.
//
// Three experiments over the distributed solvers with silent bit flips
// injected at their natural sites (device arrays, halo messages, reduction
// contributions):
//   1. audit overhead vs block size, injection off — the price of the defense
//      alone, charged to the dedicated `audit` phase;
//   2. detection + repair under flips, per solver — every flip must be caught
//      within one step, localized, healed in place, and the final fields must
//      match the fault-free serial run bit-for-bit;
//   3. repair vs rollback — the same fault sequence once with working
//      localized repair and once with the repair path sabotaged (the "same
//      block fails twice" escalation), comparing replayed work.
#include <memory>

#include "bte/direct_solver.hpp"
#include "bte/multi_gpu_solver.hpp"
#include "bte/partitioned_solver.hpp"
#include "bte/resilience.hpp"
#include "fig_common.hpp"
#include "runtime/fault.hpp"

using namespace finch;
using namespace finch::bte;
using bench::bitwise_equal;
using bench::small_scenario;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::print_header("SDC", "silent-corruption defense: detection, audit cost, repair vs rollback");
  bench::JsonBench json = bench::bench_json("bench_sdc", args);

  const BteScenario s = small_scenario();
  auto phys = std::make_shared<const BtePhysics>(s.nbands, s.ndirs);
  const int nsteps = 24;

  DirectSolver serial(s, phys);
  serial.run(nsteps);
  const auto& truth_T = serial.temperature();
  const auto truth_I = serial.intensity();

  // ---- 1. audit overhead vs block size (injection off) ----------------------
  std::printf("\naudit overhead vs ABFT block size (multi-GPU, no injection)\n");
  std::printf("%-12s %12s %12s %10s %10s\n", "block-cells", "audit(ms)", "total(ms)", "audit-%", "exact");
  bool off_exact = true;
  double audit_off = -1.0;
  {
    MultiGpuSolver plain(s, phys, 2);
    ResilienceOptions opt;  // sdc disabled: the defense must cost nothing
    plain.enable_resilience(opt);
    plain.run(nsteps);
    audit_off = plain.phases().audit;
    off_exact = off_exact && bitwise_equal(plain.temperature(), truth_T);
    std::printf("%-12s %12.4f %12.4f %9.1f%% %10s\n", "off", audit_off * 1e3,
                plain.phases().total() * 1e3, 0.0, off_exact ? "yes" : "NO");
  }
  for (const int block_cells : {4, 16, 64}) {
    MultiGpuSolver multi(s, phys, 2);
    ResilienceOptions opt;
    opt.sdc.enabled = true;
    opt.sdc.block_cells = block_cells;
    multi.enable_resilience(opt);
    multi.run(nsteps);
    const double audit = multi.phases().audit;
    const double total = multi.phases().total();
    const bool exact = bitwise_equal(multi.temperature(), truth_T) &&
                       bitwise_equal(multi.gather_intensity(), truth_I);
    off_exact = off_exact && exact;
    std::printf("%-12d %12.4f %12.4f %9.1f%% %10s\n", block_cells, audit * 1e3, total * 1e3,
                100.0 * audit / total, exact ? "yes" : "NO");
    json.begin_row();
    json.cell("experiment", 1);
    json.cell("block_cells", block_cells);
    json.cell("audit_s", audit);
    json.cell("total_s", total);
    json.cell("bit_exact", exact ? 1.0 : 0.0);
  }

  // ---- 2. detection + localized repair under flips, per solver --------------
  std::printf("\ndetection and localized repair under silent flips\n");
  std::printf("%-12s %8s %10s %8s %9s %11s %8s\n", "solver", "flips", "detected", "repairs",
              "rollbacks", "latency(st)", "exact");
  bool flip_exact = true, latency_bounded = true, no_rollbacks = true;

  auto report = [&](const char* name, int64_t flips, const ResilienceStats& rs, bool exact,
                    int experiment) {
    flip_exact = flip_exact && exact && rs.sdc_detections > 0;
    latency_bounded = latency_bounded && rs.max_detection_latency_steps <= 1;
    no_rollbacks = no_rollbacks && rs.rollbacks == 0;
    std::printf("%-12s %8lld %10lld %8lld %9lld %11lld %8s\n", name,
                static_cast<long long>(flips), static_cast<long long>(rs.sdc_detections),
                static_cast<long long>(rs.block_repairs), static_cast<long long>(rs.rollbacks),
                static_cast<long long>(rs.max_detection_latency_steps), exact ? "yes" : "NO");
    json.begin_row();
    json.cell("experiment", experiment);
    json.cell("solver", name == std::string("multi-gpu") ? 0 : (name == std::string("cell") ? 1 : 2));
    json.cell("flips", static_cast<double>(flips));
    json.cell("detections", static_cast<double>(rs.sdc_detections));
    json.cell("repairs", static_cast<double>(rs.block_repairs));
    json.cell("rollbacks", static_cast<double>(rs.rollbacks));
    json.cell("replayed_steps", static_cast<double>(rs.replayed_steps));
    json.cell("max_latency_steps", static_cast<double>(rs.max_detection_latency_steps));
    json.cell("audit_s", rs.audit_seconds);
    json.cell("recovery_s", rs.recovery_seconds);
    json.cell("bit_exact", exact ? 1.0 : 0.0);
  };

  {
    rt::FaultInjector inj(args.seed);
    rt::FaultPolicy p;
    p.every = 5;
    inj.set_site_policy(rt::FaultKind::BitFlipDeviceArray, "dev_I", p);
    MultiGpuSolver multi(s, phys, 2);
    ResilienceOptions opt;
    opt.injector = &inj;
    opt.sdc.enabled = true;
    multi.enable_resilience(opt);
    multi.run(nsteps);
    report("multi-gpu",
           inj.stats().injected[static_cast<int>(rt::FaultKind::BitFlipDeviceArray)],
           multi.resilience_stats(),
           bitwise_equal(multi.temperature(), truth_T) &&
               bitwise_equal(multi.gather_intensity(), truth_I),
           2);
  }
  {
    rt::FaultInjector inj(args.seed);
    rt::FaultPolicy p;
    p.every = 7;
    inj.set_site_policy(rt::FaultKind::BitFlipMessage, "halo", p);
    CellPartitionedSolver part(s, phys, 4);
    ResilienceOptions opt;
    opt.injector = &inj;
    opt.sdc.enabled = true;
    part.enable_resilience(opt);
    part.run(nsteps);
    report("cell", inj.stats().injected[static_cast<int>(rt::FaultKind::BitFlipMessage)],
           part.resilience_stats(),
           bitwise_equal(part.gather_temperature(), truth_T) &&
               bitwise_equal(part.gather_intensity(), truth_I),
           2);
  }
  {
    rt::FaultInjector inj(args.seed);
    rt::FaultPolicy p;
    p.every = 5;
    inj.set_site_policy(rt::FaultKind::BitFlipReduction, "gather", p);
    BandPartitionedSolver band(s, phys, 4);
    ResilienceOptions opt;
    opt.injector = &inj;
    opt.sdc.enabled = true;
    band.enable_resilience(opt);
    band.run(nsteps);
    report("band", inj.stats().injected[static_cast<int>(rt::FaultKind::BitFlipReduction)],
           band.resilience_stats(),
           bitwise_equal(band.temperature(), truth_T) &&
               bitwise_equal(band.gather_intensity(), truth_I),
           2);
  }

  // ---- 3. localized repair vs checkpoint rollback ---------------------------
  // Same flip schedule twice: (a) repair works; (b) the repair path itself is
  // hit (the "same block fails twice" case), forcing checkpoint rollback.
  std::printf("\nlocalized repair vs rollback fallback (multi-GPU, same flip schedule)\n");
  std::printf("%-10s %10s %9s %9s %10s\n", "mode", "repairs", "rollbacks", "replayed", "exact");
  int64_t replay_repair = -1, replay_rollback = -1;
  bool esc_exact = true;
  for (const bool sabotage : {false, true}) {
    rt::FaultInjector inj(args.seed);
    rt::FaultPolicy flip;
    flip.every = 1;
    flip.first_event = 6;
    flip.max_injections = 2;
    inj.set_site_policy(rt::FaultKind::BitFlipDeviceArray, "dev_I", flip);
    if (sabotage) {
      rt::FaultPolicy again;
      again.every = 1;
      again.max_injections = 2;
      inj.set_site_policy(rt::FaultKind::BitFlipDeviceArray, "repair", again);
    }
    MultiGpuSolver multi(s, phys, 2);
    ResilienceOptions opt;
    opt.injector = &inj;
    opt.checkpoint.interval = 6;
    opt.sdc.enabled = true;
    multi.enable_resilience(opt);
    multi.run(nsteps);
    const ResilienceStats& rs = multi.resilience_stats();
    const bool exact = bitwise_equal(multi.temperature(), truth_T) &&
                       bitwise_equal(multi.gather_intensity(), truth_I);
    esc_exact = esc_exact && exact;
    (sabotage ? replay_rollback : replay_repair) = rs.replayed_steps;
    std::printf("%-10s %10lld %9lld %9lld %10s\n", sabotage ? "rollback" : "repair",
                static_cast<long long>(rs.block_repairs), static_cast<long long>(rs.rollbacks),
                static_cast<long long>(rs.replayed_steps), exact ? "yes" : "NO");
    json.begin_row();
    json.cell("experiment", 3);
    json.cell("sabotaged", sabotage ? 1.0 : 0.0);
    json.cell("repairs", static_cast<double>(rs.block_repairs));
    json.cell("repair_failures", static_cast<double>(rs.repair_failures));
    json.cell("rollbacks", static_cast<double>(rs.rollbacks));
    json.cell("replayed_steps", static_cast<double>(rs.replayed_steps));
    json.cell("bit_exact", exact ? 1.0 : 0.0);
  }

  std::printf("\n");
  bench::check(audit_off == 0.0 && off_exact,
               "defense off: zero audit time; on: still bit-exact with audit charged to its own phase");
  bench::check(flip_exact, "every flipped run is detected and lands on the fault-free answer bit-for-bit");
  bench::check(latency_bounded, "detection latency is bounded by one step at every solver");
  bench::check(no_rollbacks, "localized repair heals flips without any checkpoint rollback");
  bench::check(replay_repair == 0 && replay_rollback > 0 && esc_exact,
               "repair replays nothing; the twice-failed-block fallback replays steps — and both stay exact");

  return bench::finish_bench(json, args);
}
